//! The proxy cache itself: document store, space accounting, and the
//! request-handling semantics of section 1.1 of the paper.
//!
//! A [`Cache`] owns a [`RemovalPolicy`](crate::policy::RemovalPolicy) and
//! applies the paper's hit definition: a request hits iff the cache holds a
//! copy with the *same URL and the same size*. A re-reference with a
//! different size means the origin document was modified, so the stale copy
//! is invalidated and the request is a miss.

pub mod multilevel;
pub mod partitioned;
pub mod sharded;
pub mod store;

pub use sharded::{ShardStats, ShardedCache};
pub use store::{DocStore, HashStore, SlabStore};

use crate::policy::RemovalPolicy;
use serde::{Deserialize, Serialize};
use webcache_trace::{day_of, DocType, Request, Timestamp, UrlId};

/// Metadata the cache keeps per resident document — exactly the quantities
/// the Table 1 sorting keys consume.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DocMeta {
    /// The document's URL.
    pub url: UrlId,
    /// Size in bytes (`SIZE`).
    pub size: u64,
    /// Media type.
    pub doc_type: DocType,
    /// Time the document entered the cache (`ETIME`).
    pub entry_time: Timestamp,
    /// Time of last access (`ATIME`).
    pub last_access: Timestamp,
    /// Number of references since entry (`NREF`); counts the insertion.
    pub nrefs: u64,
    /// Optional expiry time (extension key `EXPIRY`, Harvest style).
    pub expires: Option<Timestamp>,
    /// Estimated refetch latency in milliseconds (extension key `LATENCY`).
    pub refetch_latency_ms: u64,
    /// Removal priority of the document's type (extension key `DOCTYPE`);
    /// lower values are removed first.
    pub type_priority: u8,
    /// `Last-Modified` as reported by the origin, when known.
    pub last_modified: Option<Timestamp>,
}

/// Default type-removal priority for the `DOCTYPE` extension key: large
/// continuous media are removed first and text last, so that text documents
/// (the majority of references) stay cached and see low latency.
pub fn default_type_priority(t: DocType) -> u8 {
    match t {
        DocType::Audio => 0,
        DocType::Video => 1,
        DocType::Unknown => 2,
        DocType::Cgi => 3,
        DocType::Graphics => 4,
        DocType::Text => 5,
    }
}

/// Hook that lets callers enrich [`DocMeta`] at insertion time (set
/// expiries, refetch-latency estimates, or a custom type priority).
pub type MetaDecorator = fn(&Request, &mut DocMeta);

/// What happened to one request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// URL present with matching size: served from cache.
    Hit,
    /// URL absent: fetched from origin and inserted, possibly after
    /// removing the listed victims.
    Miss {
        /// Documents removed to make room, in removal order, with their
        /// full metadata (so hierarchies can push them to a lower level).
        evicted: Vec<DocMeta>,
    },
    /// URL present but with a different size: the document was modified at
    /// the origin. The stale copy was invalidated; counts as a miss.
    MissModified {
        /// Documents removed to make room for the new version.
        evicted: Vec<DocMeta>,
    },
    /// The document is larger than the whole cache; fetched but not stored
    /// (design decision D4 in DESIGN.md).
    MissTooBig,
}

impl Outcome {
    /// True for any hit.
    pub fn is_hit(&self) -> bool {
        matches!(self, Outcome::Hit)
    }
}

/// Cumulative request counters; the minimal set from which HR and WHR are
/// computed.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counts {
    /// Requests seen.
    pub requests: u64,
    /// Requests served from cache.
    pub hits: u64,
    /// Bytes requested (sum of document sizes over all requests).
    pub bytes_requested: u64,
    /// Bytes served from cache.
    pub bytes_hit: u64,
}

impl Counts {
    /// Hit rate: fraction of requests served from cache.
    pub fn hit_rate(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.hits as f64 / self.requests as f64
        }
    }

    /// Weighted hit rate: fraction of requested bytes served from cache.
    pub fn weighted_hit_rate(&self) -> f64 {
        if self.bytes_requested == 0 {
            0.0
        } else {
            self.bytes_hit as f64 / self.bytes_requested as f64
        }
    }

    /// Counter difference (`self - earlier`), for per-day deltas.
    pub fn delta(&self, earlier: &Counts) -> Counts {
        Counts {
            requests: self.requests - earlier.requests,
            hits: self.hits - earlier.hits,
            bytes_requested: self.bytes_requested - earlier.bytes_requested,
            bytes_hit: self.bytes_hit - earlier.bytes_hit,
        }
    }
}

/// Full cache statistics.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Request counters.
    pub counts: Counts,
    /// Documents evicted on demand.
    pub evictions: u64,
    /// Bytes evicted on demand.
    pub evicted_bytes: u64,
    /// Documents evicted by a periodic (end-of-day) policy run.
    pub periodic_evictions: u64,
    /// Stale copies invalidated because the document size changed.
    pub modified_invalidations: u64,
    /// Misses where the document exceeded the cache capacity entirely.
    pub too_big: u64,
    /// High-water mark of resident bytes ("maximum cache size needed
    /// during the simulation", a response variable of every experiment).
    pub max_used: u64,
}

/// A complete snapshot of a cache's simulation-relevant state, as captured
/// by [`Cache::export_state`] and reinstated by [`Cache::restore_state`].
///
/// The resident set is stored as plain [`DocMeta`] (sorted by URL for a
/// deterministic encoding); policy order is *not* stored — restore replays
/// the metadata through `on_insert`, which reconstructs every taxonomy
/// policy's order exactly, then applies the opaque
/// [`policy_state`](CacheState::policy_state) bytes for policies whose
/// state depends on eviction history (GreedyDual-Size's inflation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheState {
    /// Configured capacity in bytes; a restore target must match.
    pub capacity: u64,
    /// Day counter driving periodic (end-of-day) policy runs.
    pub current_day: u64,
    /// Accumulated statistics at snapshot time.
    pub stats: CacheStats,
    /// Resident documents, sorted by URL.
    pub docs: Vec<DocMeta>,
    /// Opaque [`RemovalPolicy::export_state`] bytes.
    pub policy_state: Vec<u8>,
}

/// How [`Cache::restore_state_lenient`] reinstated a snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RestoreOutcome {
    /// Resident set restored and the opaque policy bytes imported exactly.
    Imported,
    /// Resident set restored; the policy rejected the opaque bytes (e.g.
    /// the set was reduced by quarantine) and keeps its replayed
    /// insertion-order state instead.
    Replayed,
    /// Structural mismatch — the cache is unspecified and must be
    /// discarded.
    Failed,
}

/// A single-level proxy cache with a pluggable removal policy.
///
/// Generic over its resident-set container (`S`); the default
/// [`SlabStore`] indexes documents densely by `UrlId` and is what every
/// production path uses. [`HashStore`] exists for equivalence testing and
/// sparse-id callers.
pub struct Cache<S: DocStore = SlabStore> {
    capacity: u64,
    used: u64,
    docs: S,
    policy: Box<dyn RemovalPolicy>,
    stats: CacheStats,
    decorator: Option<MetaDecorator>,
    current_day: u64,
}

impl<S: DocStore> std::fmt::Debug for Cache<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cache")
            .field("capacity", &self.capacity)
            .field("used", &self.used)
            .field("docs", &self.docs.len())
            .field("policy", &self.policy.name())
            .finish()
    }
}

impl Cache {
    /// Create a cache of `capacity` bytes using `policy` for removal.
    pub fn new(capacity: u64, policy: Box<dyn RemovalPolicy>) -> Cache {
        Cache::new_in(capacity, policy)
    }

    /// Create an unbounded cache (Experiment 1: "simulating an infinite
    /// size cache"). Its `max_used` at the end of a simulation is the
    /// paper's *MaxNeeded*.
    pub fn infinite(policy: Box<dyn RemovalPolicy>) -> Cache {
        Cache::new(u64::MAX, policy)
    }
}

impl<S: DocStore> Cache<S> {
    /// Create a cache of `capacity` bytes with an explicitly chosen
    /// document store (e.g. `Cache::<HashStore>::new_in(...)`).
    pub fn new_in(capacity: u64, policy: Box<dyn RemovalPolicy>) -> Cache<S> {
        Cache {
            capacity,
            used: 0,
            docs: S::default(),
            policy,
            stats: CacheStats::default(),
            decorator: None,
            current_day: 0,
        }
    }

    /// Attach a [`MetaDecorator`] that enriches metadata at insert time.
    pub fn with_decorator(mut self, d: MetaDecorator) -> Cache<S> {
        self.decorator = Some(d);
        self
    }

    /// The configured capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently resident.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Number of resident documents.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// True when no documents are resident.
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Cumulative request counters (HR/WHR inputs).
    pub fn counts(&self) -> Counts {
        self.stats.counts
    }

    /// The removal policy's display name.
    pub fn policy_name(&self) -> String {
        self.policy.name()
    }

    /// Is this document resident (regardless of size/version)?
    pub fn contains(&self, url: UrlId) -> bool {
        self.docs.contains(url)
    }

    /// Metadata of a resident document.
    pub fn meta(&self, url: UrlId) -> Option<&DocMeta> {
        self.docs.get(url)
    }

    /// Position of a resident document in the policy's removal order
    /// (0 = next victim), when the policy exposes one. Appendix A's
    /// "location in sorted list of each URL hit".
    pub fn removal_position(&self, url: UrlId) -> Option<usize> {
        self.policy.removal_position(url)
    }

    /// Ask the policy to maintain whatever auxiliary index it needs to
    /// answer [`Cache::removal_position`] in sublinear time. Called by the
    /// Appendix A instrumentation, which queries the position on every
    /// request; plain sweeps skip it and keep the leaner hot path.
    pub fn enable_position_tracking(&mut self) {
        self.policy.enable_position_tracking();
    }

    /// Iterate over resident documents (arbitrary order).
    pub fn iter(&self) -> impl Iterator<Item = &DocMeta> {
        self.docs.iter()
    }

    /// Handle one client request per the section 1.1 semantics.
    // Inlined so per-request drivers (simulate, MultiSim) can elide the
    // Outcome when the caller discards it.
    #[inline]
    pub fn request(&mut self, r: &Request) -> Outcome {
        self.advance_time(r.time);
        self.stats.counts.requests += 1;
        self.stats.counts.bytes_requested += r.size;

        if let Some(meta) = self.docs.get_mut(r.url) {
            if meta.size == r.size {
                // Hit: same URL, same size.
                meta.last_access = r.time;
                meta.nrefs += 1;
                let snapshot = *meta;
                self.policy.on_access(&snapshot);
                self.stats.counts.hits += 1;
                self.stats.counts.bytes_hit += r.size;
                return Outcome::Hit;
            }
            // Modified at origin: invalidate the stale copy.
            self.remove(r.url);
            self.stats.modified_invalidations += 1;
            let evicted = self.insert(r);
            return match evicted {
                Some(evicted) => Outcome::MissModified { evicted },
                None => Outcome::MissTooBig,
            };
        }
        match self.insert(r) {
            Some(evicted) => Outcome::Miss { evicted },
            None => Outcome::MissTooBig,
        }
    }

    /// Remove a document by URL (used for invalidation and by multi-level
    /// coordination). Returns its metadata if it was resident.
    pub fn remove(&mut self, url: UrlId) -> Option<DocMeta> {
        let meta = self.docs.remove(url)?;
        self.used -= meta.size;
        self.policy.on_remove(url);
        Some(meta)
    }

    /// Insert the document named by `r`, evicting until it fits. Returns
    /// the eviction list, or `None` when the document exceeds capacity and
    /// was not stored.
    fn insert(&mut self, r: &Request) -> Option<Vec<DocMeta>> {
        if r.size > self.capacity {
            self.stats.too_big += 1;
            return None;
        }
        let mut evicted = Vec::new();
        while self.used + r.size > self.capacity {
            let victim = self
                .policy
                .victim(r.time, r.size)
                .expect("cache is over capacity but the policy offered no victim");
            let meta = self
                .docs
                .remove(victim)
                .expect("policy returned a victim that is not resident");
            self.used -= meta.size;
            self.policy.on_remove(victim);
            self.stats.evictions += 1;
            self.stats.evicted_bytes += meta.size;
            evicted.push(meta);
        }
        let mut meta = DocMeta {
            url: r.url,
            size: r.size,
            doc_type: r.doc_type,
            entry_time: r.time,
            last_access: r.time,
            nrefs: 1,
            expires: None,
            refetch_latency_ms: 0,
            type_priority: default_type_priority(r.doc_type),
            last_modified: r.last_modified,
        };
        if let Some(d) = self.decorator {
            d(r, &mut meta);
        }
        self.used += meta.size;
        self.stats.max_used = self.stats.max_used.max(self.used);
        self.docs.insert(meta);
        self.policy.on_insert(&meta);
        Some(evicted)
    }

    /// Insert a document directly from its metadata, evicting to fit.
    /// Used by the two-level cache to push L1 evictions down into L2.
    /// Returns `false` when the document exceeds capacity.
    pub fn insert_meta(&mut self, mut meta: DocMeta) -> bool {
        if meta.size > self.capacity {
            return false;
        }
        if let Some(old) = self.docs.remove(meta.url) {
            self.used -= old.size;
            self.policy.on_remove(meta.url);
        }
        while self.used + meta.size > self.capacity {
            let victim = self
                .policy
                .victim(meta.last_access, meta.size)
                .expect("cache is over capacity but the policy offered no victim");
            let v = self.docs.remove(victim).expect("victim not resident");
            self.used -= v.size;
            self.policy.on_remove(victim);
            self.stats.evictions += 1;
            self.stats.evicted_bytes += v.size;
        }
        // A pushed-down document keeps its history but is re-entered now.
        meta.entry_time = meta.last_access;
        self.used += meta.size;
        self.stats.max_used = self.stats.max_used.max(self.used);
        self.docs.insert(meta);
        self.policy.on_insert(&meta);
        true
    }

    /// Observe the passage of time. On a day boundary, run the policy's
    /// periodic removal (Pitkow/Recker's end-of-day purge) if it requests
    /// one.
    pub fn advance_time(&mut self, now: Timestamp) {
        let day = day_of(now);
        while self.current_day < day {
            self.current_day += 1;
            let boundary = self.current_day * webcache_trace::SECONDS_PER_DAY;
            if let Some(target) = self
                .policy
                .periodic_target(boundary, self.used, self.capacity)
            {
                while self.used > target {
                    let Some(victim) = self.policy.victim(boundary, 0) else {
                        break;
                    };
                    let meta = self.docs.remove(victim).expect("victim not resident");
                    self.used -= meta.size;
                    self.policy.on_remove(victim);
                    self.stats.periodic_evictions += 1;
                    self.stats.evicted_bytes += meta.size;
                }
            }
        }
    }

    /// Snapshot the cache's complete simulation state for a checkpoint.
    pub fn export_state(&self) -> CacheState {
        let mut docs: Vec<DocMeta> = self.docs.iter().copied().collect();
        docs.sort_unstable_by_key(|m| m.url);
        CacheState {
            capacity: self.capacity,
            current_day: self.current_day,
            stats: self.stats,
            docs,
            policy_state: self.policy.export_state(),
        }
    }

    /// Reinstate a snapshot into a freshly constructed cache (same
    /// capacity, same policy, nothing resident). Each document is
    /// re-inserted directly — bypassing [`Cache::insert_meta`], which
    /// resets entry times and may evict — and then the policy's opaque
    /// state is applied. Returns `false` if the snapshot is inconsistent
    /// with this cache (wrong capacity, cache not empty, resident bytes
    /// over capacity, or policy-state rejection); the cache is then in an
    /// unspecified state and must be discarded.
    pub fn restore_state(&mut self, state: &CacheState) -> bool {
        if !self.docs.is_empty() || self.used != 0 || self.capacity != state.capacity {
            return false;
        }
        for m in &state.docs {
            self.docs.insert(*m);
            self.used += m.size;
            self.policy.on_insert(m);
        }
        if self.used > self.capacity || !self.policy.import_state(&state.policy_state) {
            return false;
        }
        self.stats = state.stats;
        self.current_day = state.current_day;
        true
    }

    /// Like [`Cache::restore_state`], but tolerant of policy-state
    /// rejection: the resident set is always reinstated (each document
    /// replayed through `on_insert`, which fully rebuilds every taxonomy
    /// policy's rank order), and the opaque policy bytes are applied
    /// opportunistically on top. Crash recovery needs this split because
    /// a quarantined (corrupt-on-disk) document shrinks the resident set,
    /// which makes an exact-match importer such as GreedyDual-Size's
    /// reject the exported bytes — a warm cache with insertion-order rank
    /// state beats discarding the whole shard.
    ///
    /// [`RestoreOutcome::Failed`] is only returned for structural
    /// inconsistency (cache not empty, capacity mismatch, resident bytes
    /// over capacity); the cache must then be discarded, exactly as with
    /// a `false` from `restore_state`. Importers must validate before
    /// mutating (all in-tree ones do), so `Replayed` leaves the policy in
    /// its clean replayed-on-insert state.
    pub fn restore_state_lenient(&mut self, state: &CacheState) -> RestoreOutcome {
        if !self.docs.is_empty() || self.used != 0 || self.capacity != state.capacity {
            return RestoreOutcome::Failed;
        }
        for m in &state.docs {
            self.docs.insert(*m);
            self.used += m.size;
            self.policy.on_insert(m);
        }
        if self.used > self.capacity {
            return RestoreOutcome::Failed;
        }
        self.stats = state.stats;
        self.current_day = state.current_day;
        if self.policy.import_state(&state.policy_state) {
            RestoreOutcome::Imported
        } else {
            RestoreOutcome::Replayed
        }
    }

    /// Internal consistency check used by tests: accounted bytes equal the
    /// sum of resident sizes, within capacity, and the policy tracks
    /// exactly the resident set.
    pub fn check_invariants(&self) {
        let sum: u64 = self.docs.iter().map(|m| m.size).sum();
        assert_eq!(sum, self.used, "used-bytes accounting drifted");
        assert!(self.used <= self.capacity, "cache exceeds capacity");
        assert_eq!(
            self.policy.len(),
            self.docs.len(),
            "policy tracks a different document set than the cache"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::named;
    use crate::policy::{Key, KeySpec, SortedPolicy};
    use webcache_trace::{ClientId, DocType, ServerId};

    pub(crate) fn req(time: u64, url: u32, size: u64) -> Request {
        Request {
            time,
            client: ClientId(0),
            server: ServerId(0),
            url: UrlId(url),
            size,
            doc_type: DocType::Text,
            last_modified: None,
        }
    }

    fn lru_cache(capacity: u64) -> Cache {
        Cache::new(capacity, Box::new(named::lru()))
    }

    /// URLs evicted by a miss outcome, in removal order.
    fn evicted_urls(out: &Outcome) -> Vec<UrlId> {
        match out {
            Outcome::Miss { evicted } | Outcome::MissModified { evicted } => {
                evicted.iter().map(|m| m.url).collect()
            }
            _ => panic!("expected a miss with evictions, got {out:?}"),
        }
    }

    #[test]
    fn hit_requires_matching_size() {
        let mut c = lru_cache(100);
        assert!(matches!(c.request(&req(0, 1, 10)), Outcome::Miss { .. }));
        assert!(c.request(&req(1, 1, 10)).is_hit());
        // Same URL, new size: modified document, miss + invalidation.
        let out = c.request(&req(2, 1, 20));
        assert!(matches!(out, Outcome::MissModified { .. }));
        assert_eq!(c.stats().modified_invalidations, 1);
        assert_eq!(c.used(), 20);
        // And the new version now hits.
        assert!(c.request(&req(3, 1, 20)).is_hit());
        c.check_invariants();
    }

    #[test]
    fn eviction_frees_exactly_enough() {
        let mut c = lru_cache(30);
        c.request(&req(0, 1, 10));
        c.request(&req(1, 2, 10));
        c.request(&req(2, 3, 10));
        // Full. A 10-byte doc evicts exactly the LRU doc (url 1).
        let out = c.request(&req(3, 4, 10));
        assert_eq!(evicted_urls(&out), vec![UrlId(1)]);
        assert!(!c.contains(UrlId(1)));
        assert_eq!(c.used(), 30);
        c.check_invariants();
    }

    #[test]
    fn lru_touch_protects_recently_used() {
        let mut c = lru_cache(30);
        c.request(&req(0, 1, 10));
        c.request(&req(1, 2, 10));
        c.request(&req(2, 3, 10));
        c.request(&req(3, 1, 10)); // touch 1, so 2 becomes LRU
        let out = c.request(&req(4, 4, 10));
        assert_eq!(evicted_urls(&out), vec![UrlId(2)]);
    }

    #[test]
    fn too_big_documents_are_not_stored() {
        let mut c = lru_cache(100);
        c.request(&req(0, 1, 10));
        let out = c.request(&req(1, 2, 500));
        assert_eq!(out, Outcome::MissTooBig);
        assert!(!c.contains(UrlId(2)));
        assert!(c.contains(UrlId(1)), "existing contents are not purged");
        assert_eq!(c.stats().too_big, 1);
        c.check_invariants();
    }

    #[test]
    fn counters_track_hr_and_whr() {
        let mut c = lru_cache(1000);
        c.request(&req(0, 1, 100));
        c.request(&req(1, 1, 100));
        c.request(&req(2, 2, 300));
        let n = c.counts();
        assert_eq!(n.requests, 3);
        assert_eq!(n.hits, 1);
        assert!((n.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
        assert!((n.weighted_hit_rate() - 100.0 / 500.0).abs() < 1e-12);
    }

    #[test]
    fn infinite_cache_never_evicts_and_tracks_max_needed() {
        let mut c = Cache::infinite(Box::new(named::lru()));
        for i in 0..100 {
            c.request(&req(i, i as u32, 1000));
        }
        assert_eq!(c.stats().evictions, 0);
        assert_eq!(c.stats().max_used, 100_000);
        assert_eq!(c.len(), 100);
    }

    #[test]
    fn size_policy_evicts_largest_first() {
        let mut c = Cache::new(
            100,
            Box::new(SortedPolicy::new(KeySpec::primary(Key::Size))),
        );
        c.request(&req(0, 1, 50));
        c.request(&req(1, 2, 30));
        c.request(&req(2, 3, 20));
        // Needs 10 bytes: SIZE removes the largest document (url 1, 50B).
        let out = c.request(&req(3, 4, 10));
        assert_eq!(evicted_urls(&out), vec![UrlId(1)]);
        assert_eq!(c.used(), 60);
    }

    #[test]
    fn max_used_high_water_mark() {
        let mut c = lru_cache(100);
        c.request(&req(0, 1, 80));
        c.request(&req(1, 2, 90)); // evicts 1
        assert_eq!(c.stats().max_used, 90);
        assert_eq!(c.used(), 90);
    }

    #[test]
    fn remove_returns_meta_and_updates_accounting() {
        let mut c = lru_cache(100);
        c.request(&req(5, 1, 40));
        let meta = c.remove(UrlId(1)).unwrap();
        assert_eq!(meta.size, 40);
        assert_eq!(meta.entry_time, 5);
        assert_eq!(c.used(), 0);
        assert!(c.remove(UrlId(1)).is_none());
        c.check_invariants();
    }

    /// A deterministic pseudo-random request mix that exercises hits,
    /// modified-size invalidations and evictions.
    fn churn_req(i: u64) -> Request {
        let url = (i * 2654435761 % 97) as u32;
        let size = 10 + (i * 40503 % 7) * ((url as u64 % 5) + 1) * 10;
        req(i * 700, url, size)
    }

    #[test]
    fn export_restore_resumes_bit_identically() {
        let policies: Vec<Box<dyn RemovalPolicy>> = vec![
            Box::new(named::lru()),
            Box::new(SortedPolicy::new(KeySpec::primary(Key::Size))),
            Box::new(crate::policy::GreedyDualSize::new()),
            Box::new(crate::policy::LruMin::new()),
            Box::new(crate::policy::PitkowRecker::default()),
        ];
        for make in policies {
            let name = make.name();
            // Uninterrupted control run.
            let mut control = Cache::new(2000, make);
            // A parallel run snapshotted and cold-restored at request 500.
            let mut first = Cache::new(2000, policy_by_name(&name));
            for i in 0..500 {
                control.request(&churn_req(i));
                first.request(&churn_req(i));
            }
            let snap = first.export_state();
            drop(first);
            let mut resumed = Cache::new(2000, policy_by_name(&name));
            assert!(resumed.restore_state(&snap), "restore failed for {name}");
            resumed.check_invariants();
            for i in 500..1500 {
                control.request(&churn_req(i));
                resumed.request(&churn_req(i));
            }
            assert_eq!(
                control.stats(),
                resumed.stats(),
                "stats diverged for {name}"
            );
            assert_eq!(control.used(), resumed.used(), "usage diverged for {name}");
        }
    }

    fn policy_by_name(name: &str) -> Box<dyn RemovalPolicy> {
        match name {
            "LRU" => Box::new(named::lru()),
            "SIZE/RANDOM" => Box::new(SortedPolicy::new(KeySpec::primary(Key::Size))),
            "GD-SIZE(1)" => Box::new(crate::policy::GreedyDualSize::new()),
            "LRU-MIN" => Box::new(crate::policy::LruMin::new()),
            "PITKOW-RECKER" => Box::new(crate::policy::PitkowRecker::default()),
            other => panic!("no factory for {other}"),
        }
    }

    #[test]
    fn restore_rejects_mismatched_capacity_and_nonempty_target() {
        let mut c = lru_cache(100);
        c.request(&req(0, 1, 10));
        let snap = c.export_state();
        // Wrong capacity.
        let mut wrong = lru_cache(200);
        assert!(!wrong.restore_state(&snap));
        // Non-empty target.
        let mut busy = lru_cache(100);
        busy.request(&req(0, 2, 10));
        assert!(!busy.restore_state(&snap));
        // Correct target restores.
        let mut ok = lru_cache(100);
        assert!(ok.restore_state(&snap));
        assert!(ok.contains(UrlId(1)));
    }

    #[test]
    fn lenient_restore_replays_when_policy_state_rejected() {
        // GreedyDual-Size rejects an export describing a larger resident
        // set (the quarantine case); lenient restore keeps the replayed
        // resident set instead of failing outright.
        let mut full = Cache::new(2000, Box::new(crate::policy::GreedyDualSize::new()));
        full.request(&req(0, 1, 10));
        full.request(&req(1, 2, 20));
        let mut snap = full.export_state();
        // Quarantine doc 2: the doc list shrinks but the opaque policy
        // bytes still describe both documents.
        snap.docs.retain(|m| m.url != UrlId(2));
        let mut back = Cache::new(2000, Box::new(crate::policy::GreedyDualSize::new()));
        assert_eq!(back.restore_state_lenient(&snap), RestoreOutcome::Replayed);
        back.check_invariants();
        assert!(back.contains(UrlId(1)));
        assert!(!back.contains(UrlId(2)));
        // An untouched snapshot imports exactly.
        let snap = full.export_state();
        let mut exact = Cache::new(2000, Box::new(crate::policy::GreedyDualSize::new()));
        assert_eq!(exact.restore_state_lenient(&snap), RestoreOutcome::Imported);
        exact.check_invariants();
        // Structural mismatch still fails.
        let mut wrong = Cache::new(100, Box::new(crate::policy::GreedyDualSize::new()));
        assert_eq!(wrong.restore_state_lenient(&snap), RestoreOutcome::Failed);
    }

    #[test]
    fn decorator_enriches_meta() {
        fn ttl(_r: &Request, m: &mut DocMeta) {
            m.expires = Some(m.entry_time + 60);
            m.refetch_latency_ms = 250;
        }
        let mut c = Cache::new(100, Box::new(named::lru())).with_decorator(ttl);
        c.request(&req(10, 1, 5));
        let m = c.meta(UrlId(1)).unwrap();
        assert_eq!(m.expires, Some(70));
        assert_eq!(m.refetch_latency_ms, 250);
    }
}
