//! Caches partitioned by media type (Experiment 4, section 4.7).
//!
//! The paper asks: "Should a cache be partitioned by media type?" and
//! answers it for workload BR by splitting a cache into an audio partition
//! and a non-audio partition, varying the audio share among ¼, ½ and ¾ of
//! the total size. This module generalises to any number of partitions,
//! each defined by a set of [`DocType`]s, with one catch-all partition.
//!
//! Note the paper's metric convention, kept here: "the WHRs reported are
//! over all requests (i.e., audio HR is the number of audio hits for all
//! references)" — each partition's counters are divided by *total* traffic,
//! not by its own class's traffic. Per-class rates are also available.

use crate::cache::{Cache, Counts, Outcome};
use crate::policy::RemovalPolicy;
use webcache_trace::{DocType, Request};

/// One partition: the document types it owns and its cache.
#[derive(Debug)]
pub struct Partition {
    /// Label for reports (e.g. `"audio"`).
    pub name: String,
    /// Types stored in this partition; empty = catch-all.
    pub types: Vec<DocType>,
    /// The partition's cache.
    pub cache: Cache,
    /// Counters over this partition's own class of requests.
    pub class_counts: Counts,
}

/// A cache split into type-dedicated partitions.
#[derive(Debug)]
pub struct PartitionedCache {
    partitions: Vec<Partition>,
    total: Counts,
}

/// One partition specification: `(name, claimed types, capacity, policy)`.
pub type PartitionSpec = (String, Vec<DocType>, u64, Box<dyn RemovalPolicy>);

impl PartitionedCache {
    /// Build from `(name, types, capacity, policy)` tuples. Exactly one
    /// partition should have an empty type list: it is the catch-all that
    /// receives every type not claimed elsewhere.
    pub fn new(parts: Vec<PartitionSpec>) -> PartitionedCache {
        assert!(!parts.is_empty(), "need at least one partition");
        let catch_alls = parts.iter().filter(|(_, t, _, _)| t.is_empty()).count();
        assert_eq!(catch_alls, 1, "exactly one catch-all partition required");
        PartitionedCache {
            partitions: parts
                .into_iter()
                .map(|(name, types, cap, policy)| Partition {
                    name,
                    types,
                    cache: Cache::new(cap, policy),
                    class_counts: Counts::default(),
                })
                .collect(),
            total: Counts::default(),
        }
    }

    /// The paper's Experiment 4 configuration: an audio partition of
    /// `audio_fraction * total_capacity` bytes and a non-audio partition
    /// with the remainder, both using the given policy constructor.
    pub fn audio_split(
        total_capacity: u64,
        audio_fraction: f64,
        mut policy: impl FnMut() -> Box<dyn RemovalPolicy>,
    ) -> PartitionedCache {
        assert!((0.0..1.0).contains(&audio_fraction) && audio_fraction > 0.0);
        let audio_cap = (total_capacity as f64 * audio_fraction) as u64;
        PartitionedCache::new(vec![
            (
                "audio".to_string(),
                vec![DocType::Audio],
                audio_cap,
                policy(),
            ),
            (
                "non-audio".to_string(),
                Vec::new(),
                total_capacity - audio_cap,
                policy(),
            ),
        ])
    }

    fn route(&mut self, t: DocType) -> &mut Partition {
        let idx = self
            .partitions
            .iter()
            .position(|p| p.types.contains(&t))
            .unwrap_or_else(|| {
                self.partitions
                    .iter()
                    .position(|p| p.types.is_empty())
                    .expect("constructor guarantees a catch-all")
            });
        &mut self.partitions[idx]
    }

    /// Handle one request, routing it to the partition owning its type.
    pub fn request(&mut self, r: &Request) -> Outcome {
        self.total.requests += 1;
        self.total.bytes_requested += r.size;
        let part = self.route(r.doc_type);
        part.class_counts.requests += 1;
        part.class_counts.bytes_requested += r.size;
        let out = part.cache.request(r);
        if out.is_hit() {
            part.class_counts.hits += 1;
            part.class_counts.bytes_hit += r.size;
            self.total.hits += 1;
            self.total.bytes_hit += r.size;
        }
        out
    }

    /// All partitions.
    pub fn partitions(&self) -> &[Partition] {
        &self.partitions
    }

    /// A partition by name.
    pub fn partition(&self, name: &str) -> Option<&Partition> {
        self.partitions.iter().find(|p| p.name == name)
    }

    /// Counters over all requests regardless of partition.
    pub fn total_counts(&self) -> Counts {
        self.total
    }

    /// The paper's Figs 19-20 metric: a partition's hit counters divided by
    /// **all** traffic ("audio HR is the number of audio hits for all
    /// references").
    pub fn counts_over_all_requests(&self, name: &str) -> Option<Counts> {
        let p = self.partition(name)?;
        Some(Counts {
            requests: self.total.requests,
            hits: p.class_counts.hits,
            bytes_requested: self.total.bytes_requested,
            bytes_hit: p.class_counts.bytes_hit,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::named;
    use webcache_trace::{ClientId, ServerId, UrlId};

    fn req(time: u64, url: u32, size: u64, t: DocType) -> Request {
        Request {
            time,
            client: ClientId(0),
            server: ServerId(0),
            url: UrlId(url),
            size,
            doc_type: t,
            last_modified: None,
        }
    }

    fn split(frac: f64) -> PartitionedCache {
        PartitionedCache::audio_split(1000, frac, || Box::new(named::size()))
    }

    #[test]
    fn requests_route_by_type() {
        let mut p = split(0.5);
        p.request(&req(0, 1, 100, DocType::Audio));
        p.request(&req(1, 2, 100, DocType::Text));
        p.request(&req(2, 3, 100, DocType::Graphics));
        assert_eq!(p.partition("audio").unwrap().cache.len(), 1);
        assert_eq!(p.partition("non-audio").unwrap().cache.len(), 2);
    }

    #[test]
    fn audio_cannot_displace_non_audio() {
        let mut p = split(0.25); // 250B audio, 750B non-audio
        p.request(&req(0, 1, 500, DocType::Text));
        // Audio traffic larger than its partition never evicts the text doc.
        for i in 0..10 {
            p.request(&req(1 + i, 100 + i as u32, 240, DocType::Audio));
        }
        assert!(p.partition("non-audio").unwrap().cache.contains(UrlId(1)));
        assert!(p.partition("audio").unwrap().cache.used() <= 250);
    }

    #[test]
    fn over_all_requests_metric_uses_total_denominator() {
        let mut p = split(0.5);
        p.request(&req(0, 1, 100, DocType::Audio));
        p.request(&req(1, 1, 100, DocType::Audio)); // audio hit
        p.request(&req(2, 2, 100, DocType::Text));
        p.request(&req(3, 2, 100, DocType::Text)); // text hit
        let audio = p.counts_over_all_requests("audio").unwrap();
        // 1 audio hit over 4 total requests.
        assert!((audio.hit_rate() - 0.25).abs() < 1e-12);
        assert!((audio.weighted_hit_rate() - 0.25).abs() < 1e-12);
        // Per-class rate is 1 hit over 2 audio requests.
        let class = p.partition("audio").unwrap().class_counts;
        assert!((class.hit_rate() - 0.5).abs() < 1e-12);
        assert!(p.counts_over_all_requests("nope").is_none());
    }

    #[test]
    fn total_counts_aggregate_partitions() {
        let mut p = split(0.5);
        p.request(&req(0, 1, 100, DocType::Audio));
        p.request(&req(1, 1, 100, DocType::Audio));
        p.request(&req(2, 2, 50, DocType::Text));
        let t = p.total_counts();
        assert_eq!(t.requests, 3);
        assert_eq!(t.hits, 1);
        assert_eq!(t.bytes_requested, 250);
        assert_eq!(t.bytes_hit, 100);
    }

    #[test]
    #[should_panic(expected = "catch-all")]
    fn requires_exactly_one_catch_all() {
        let _ = PartitionedCache::new(vec![(
            "audio".to_string(),
            vec![DocType::Audio],
            100,
            Box::new(named::lru()) as Box<dyn RemovalPolicy>,
        )]);
    }
}
