//! # webcache-core
//!
//! The primary contribution of Williams, Abrams, Standridge, Abdulla & Fox,
//! *Removal Policies in Network Caches for World-Wide Web Documents*
//! (SIGCOMM 1996), as a reusable library:
//!
//! * [`policy`] — the sorting-key taxonomy of removal policies (Table 1,
//!   all 36 primary/secondary combinations) plus the literature policies it
//!   subsumes (FIFO, LRU, LFU, Hyper-G) and the two it approximates but
//!   which are implemented exactly here (LRU-MIN, Pitkow/Recker), and the
//!   GreedyDual-Size extension.
//! * [`cache`] — the proxy cache with the paper's hit semantics
//!   (hit = URL + size match), plus two-level hierarchies and media-type
//!   partitioned caches.
//! * [`sim`] — the trace-driven simulator producing the per-day HR/WHR
//!   streams every figure of the paper's evaluation is built from.
//!
//! ## Quick example
//!
//! ```
//! use webcache_core::policy::named;
//! use webcache_trace::{Trace, RawRequest};
//!
//! let raws: Vec<RawRequest> = (0..100)
//!     .map(|i| RawRequest {
//!         time: i,
//!         client: "c".into(),
//!         url: format!("http://server/doc{}.html", i % 10),
//!         status: 200,
//!         size: 1000 + (i % 10) * 100,
//!         last_modified: None,
//!     })
//!     .collect();
//! let trace = Trace::from_raw("demo", &raws);
//!
//! // SIZE beats-or-ties LRU on hit rate at a starved cache size — the
//! // paper's headline result.
//! let size = webcache_core::sim::simulate_policy(&trace, 4000, Box::new(named::size()));
//! let lru = webcache_core::sim::simulate_policy(&trace, 4000, Box::new(named::lru()));
//! let (s, l) = (
//!     size.stream("cache").unwrap().total.hit_rate(),
//!     lru.stream("cache").unwrap().total.hit_rate(),
//! );
//! assert!(s >= l);
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod lifecycle;
pub mod policy;
pub mod sim;
pub mod util;

pub use cache::{Cache, CacheStats, Counts, DocMeta, Outcome, ShardedCache};
pub use policy::{Key, KeySpec, RemovalPolicy, SortedPolicy};
pub use sim::{simulate, simulate_infinite, simulate_policy, CacheSystem, SimResult};
