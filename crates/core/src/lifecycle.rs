//! Process-wide stop flag and SIGINT/SIGTERM handlers.
//!
//! Extracted from `experiments::lifecycle` so every long-running binary in
//! the workspace — the experiments sweep driver and the standalone caching
//! proxy — shares one flag and one handler installation. Sweeps poll the
//! flag between request strides to flush a final checkpoint; the proxy
//! polls it to flush its journal and write a final cache snapshot before
//! exiting, so a `kill` (SIGTERM) or Ctrl-C never loses the warm working
//! set.

use std::sync::atomic::{AtomicBool, Ordering};

/// Process-wide stop flag raised by the SIGINT/SIGTERM handler.
static STOP: AtomicBool = AtomicBool::new(false);

/// True once a termination signal has been received.
pub fn stop_requested() -> bool {
    STOP.load(Ordering::SeqCst)
}

/// Raise the stop flag by hand (tests; equivalent to receiving SIGINT).
pub fn request_stop() {
    STOP.store(true, Ordering::SeqCst);
}

/// Clear the stop flag. Only meaningful for tests and harnesses that
/// outlive an interrupted run within one process; a signalled CLI run
/// exits instead.
pub fn reset_stop() {
    STOP.store(false, Ordering::SeqCst);
}

/// The flag itself, for callers that need to hand a `&'static AtomicBool`
/// into a polling loop (e.g. `sim::run_resumable`'s stop parameter).
pub fn stop_flag() -> &'static AtomicBool {
    &STOP
}

#[cfg(unix)]
mod signals {
    use super::STOP;
    use std::sync::atomic::Ordering;

    // Raw libc signal(2) binding: the workspace deliberately vendors no
    // libc crate, and installing a flag-setting handler needs only this
    // one symbol. Write access to a static AtomicBool is async-signal-safe.
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" fn on_signal(_signum: i32) {
        STOP.store(true, Ordering::SeqCst);
    }

    pub fn install() {
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }
}

/// Install SIGINT/SIGTERM handlers that raise the stop flag so in-flight
/// work flushes its final checkpoint/snapshot and exits cleanly. No-op off
/// Unix.
pub fn install_signal_handlers() {
    #[cfg(unix)]
    signals::install();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stop_flag_round_trip() {
        reset_stop();
        assert!(!stop_requested());
        request_stop();
        assert!(stop_requested());
        assert!(stop_flag().load(std::sync::atomic::Ordering::SeqCst));
        reset_stop();
        assert!(!stop_requested());
    }
}
