//! Small shared utilities: the SplitMix64 mixer every deterministic
//! subsystem keys off.
//!
//! Three copies of this function used to live in the tree — the workload
//! generator's per-day RNG stream seeding, [`crate::cache::ShardedCache`]'s
//! shard keying, and the proxy fault injector's per-connection decisions.
//! They are deduplicated here so a constant typo in one copy can never
//! silently decorrelate the others; `tests/splitmix_equiv.rs` at the
//! workspace root pins the cross-crate equivalence (and the published
//! SplitMix64 test vectors).

/// The SplitMix64 golden-ratio increment (`2^64 / φ`).
pub const SPLITMIX64_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// The SplitMix64 finaliser: the avalanche mix applied to an
/// already-incremented state. [`splitmix64`] = `finalise(x + GAMMA)`;
/// callers that fold several values into the state before mixing (the
/// workload generator's `(seed, day)` streams) call this directly so the
/// constants live in exactly one place.
#[inline]
pub fn splitmix64_finalise(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// SplitMix64: a tiny, high-quality 64-bit mixer (Steele, Lea & Flood,
/// OOPSLA 2014). Used for deterministic random tie-breaking in policies,
/// shard keying of dense interned ids, fault-plan draws, and backoff
/// jitter — anywhere a reproducible, well-distributed hash of a small
/// integer is needed.
#[inline]
pub fn splitmix64(x: u64) -> u64 {
    splitmix64_finalise(x.wrapping_add(SPLITMIX64_GAMMA))
}

/// Mix `(seed, stream)` into an independent stream seed: the state is
/// `seed + offset + stream * mul` pushed through the SplitMix64
/// finaliser. `offset` and `mul` are per-call-site constants so distinct
/// subsystems (the generator's per-day streams, the universe builder's
/// per-chunk streams) draw from decorrelated families even at equal
/// `(seed, stream)`.
#[inline]
pub fn stream_seed(seed: u64, stream: u64, offset: u64, mul: u64) -> u64 {
    splitmix64_finalise(
        seed.wrapping_add(offset)
            .wrapping_add(stream.wrapping_mul(mul)),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference vectors from the published SplitMix64 implementation
    /// (seed 0 and seed 1234567 produce these first outputs).
    #[test]
    fn matches_published_test_vectors() {
        assert_eq!(splitmix64(0), 0xE220_A839_7B1D_CDAF);
        assert_eq!(
            splitmix64(0u64.wrapping_add(SPLITMIX64_GAMMA)),
            0x6E78_9E6A_A1B9_65F4,
            "second output of the seed-0 sequence"
        );
        assert_eq!(splitmix64(1234567), 0x599E_D017_FB08_FC85);
    }

    #[test]
    fn finalise_composes_to_splitmix64() {
        for x in [0u64, 1, 42, u64::MAX, 0xDEAD_BEEF] {
            assert_eq!(
                splitmix64(x),
                splitmix64_finalise(x.wrapping_add(SPLITMIX64_GAMMA))
            );
        }
    }

    #[test]
    fn stream_seeds_decorrelate_streams_and_families() {
        let a = stream_seed(1, 0, SPLITMIX64_GAMMA, 0xBF58_476D_1CE4_E5B9);
        let b = stream_seed(1, 1, SPLITMIX64_GAMMA, 0xBF58_476D_1CE4_E5B9);
        let c = stream_seed(1, 0, 0x1656_67B1_9E37_79F9, 0x94D0_49BB_1331_11EB);
        assert_ne!(a, b, "adjacent streams must differ");
        assert_ne!(a, c, "distinct constant families must differ");
    }
}
