//! The exact Pitkow/Recker policy (*A simple yet robust caching algorithm
//! based on dynamic access patterns*, WWW2 1994), as characterised in
//! Tables 3 and the text of section 1.2/1.3 of the paper:
//!
//! * **Victim selection** — if any cached document was last accessed on an
//!   earlier day than today (`DAY(ATIME) ≠ today`), use `DAY(ATIME)` as the
//!   primary key and remove the document accessed the most days ago.
//!   Otherwise (everything was used today) use `SIZE` and remove the
//!   largest document.
//! * **When to run** — both on demand *and* at the end of each day, where
//!   it removes documents until free space reaches a *comfort level*
//!   (a configurable fraction of capacity).
//!
//! Ties within a day are broken by the deterministic random order, matching
//! the paper's use of random tie-breaks throughout.

use crate::cache::DocMeta;
use crate::policy::key::splitmix64;
use crate::policy::RemovalPolicy;
use rustc_hash::FxHashMap;
use std::collections::BTreeSet;
use webcache_trace::{day_of, Timestamp, UrlId};

/// The exact Pitkow/Recker removal policy.
#[derive(Debug, Clone)]
pub struct PitkowRecker {
    /// Docs ordered by `(day(atime), random)` — stalest day first.
    by_day: BTreeSet<(u64, u64, UrlId)>,
    /// Docs ordered by descending size (stored as `u64::MAX - size`).
    by_size: BTreeSet<(u64, u64, UrlId)>,
    /// Per-doc `(day, size)` for entry lookup.
    docs: FxHashMap<UrlId, (u64, u64)>,
    /// Fraction of capacity that may remain *used* after the end-of-day
    /// purge (the "comfort level"). `None` disables periodic removal, which
    /// reduces the policy to its on-demand half.
    comfort_used_fraction: Option<f64>,
    salt: u64,
}

impl Default for PitkowRecker {
    /// The configuration used in the paper's comparison: periodic end-of-day
    /// removal down to 75% of capacity plus on-demand removal.
    fn default() -> Self {
        PitkowRecker::new(Some(0.75), 0)
    }
}

impl PitkowRecker {
    /// Create the policy. `comfort_used_fraction` is the used-bytes target
    /// of the end-of-day purge as a fraction of capacity (`None` = on-demand
    /// only); `salt` seeds random tie-breaking.
    pub fn new(comfort_used_fraction: Option<f64>, salt: u64) -> PitkowRecker {
        if let Some(f) = comfort_used_fraction {
            assert!(
                (0.0..=1.0).contains(&f),
                "comfort fraction must be in [0,1]"
            );
        }
        PitkowRecker {
            by_day: BTreeSet::new(),
            by_size: BTreeSet::new(),
            docs: FxHashMap::default(),
            comfort_used_fraction,
            salt,
        }
    }

    fn tiebreak(&self, url: UrlId) -> u64 {
        splitmix64(url.0 as u64 ^ self.salt)
    }

    fn insert_entry(&mut self, url: UrlId, day: u64, size: u64) {
        let tb = self.tiebreak(url);
        self.by_day.insert((day, tb, url));
        self.by_size.insert((u64::MAX - size, tb, url));
        self.docs.insert(url, (day, size));
    }

    fn remove_entry(&mut self, url: UrlId) -> Option<(u64, u64)> {
        let (day, size) = self.docs.remove(&url)?;
        let tb = self.tiebreak(url);
        self.by_day.remove(&(day, tb, url));
        self.by_size.remove(&(u64::MAX - size, tb, url));
        Some((day, size))
    }
}

impl RemovalPolicy for PitkowRecker {
    fn name(&self) -> String {
        "PITKOW-RECKER".to_string()
    }

    fn on_insert(&mut self, meta: &DocMeta) {
        self.remove_entry(meta.url);
        self.insert_entry(meta.url, day_of(meta.last_access), meta.size);
    }

    fn on_access(&mut self, meta: &DocMeta) {
        self.on_insert(meta);
    }

    fn on_remove(&mut self, url: UrlId) {
        self.remove_entry(url);
    }

    fn victim(&mut self, now: Timestamp, _incoming_size: u64) -> Option<UrlId> {
        let today = day_of(now);
        let &(stalest_day, _, stale_url) = self.by_day.first()?;
        if stalest_day < today {
            // Some document was not accessed today: evict by DAY(ATIME).
            Some(stale_url)
        } else {
            // Everything was accessed today: evict the largest document.
            self.by_size.first().map(|&(_, _, url)| url)
        }
    }

    fn len(&self) -> usize {
        self.docs.len()
    }

    fn periodic_target(&self, _now: Timestamp, used: u64, capacity: u64) -> Option<u64> {
        let f = self.comfort_used_fraction?;
        if capacity == u64::MAX {
            return None; // Infinite caches have no comfort level.
        }
        let target = (capacity as f64 * f) as u64;
        (used > target).then_some(target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use webcache_trace::{DocType, SECONDS_PER_DAY};

    fn meta(url: u32, size: u64, atime: u64) -> DocMeta {
        DocMeta {
            url: UrlId(url),
            size,
            doc_type: DocType::Text,
            entry_time: atime,
            last_access: atime,
            nrefs: 1,
            expires: None,
            refetch_latency_ms: 0,
            type_priority: 0,
            last_modified: None,
        }
    }

    #[test]
    fn stale_days_evicted_before_today() {
        let mut p = PitkowRecker::default();
        let today = 5 * SECONDS_PER_DAY + 100;
        p.on_insert(&meta(1, 10, 3 * SECONDS_PER_DAY)); // 2 days stale
        p.on_insert(&meta(2, 10, 4 * SECONDS_PER_DAY)); // 1 day stale
        p.on_insert(&meta(3, 10_000, today)); // today, huge
                                              // DAY(ATIME) branch: most-days-ago first, despite the huge doc.
        assert_eq!(p.victim(today, 0), Some(UrlId(1)));
    }

    #[test]
    fn all_accessed_today_falls_back_to_size() {
        let mut p = PitkowRecker::default();
        let today = 5 * SECONDS_PER_DAY;
        p.on_insert(&meta(1, 10, today + 1));
        p.on_insert(&meta(2, 9_999, today + 2));
        p.on_insert(&meta(3, 500, today + 3));
        assert_eq!(p.victim(today + 10, 0), Some(UrlId(2)));
    }

    #[test]
    fn access_moves_doc_to_today() {
        let mut p = PitkowRecker::default();
        let today = 5 * SECONDS_PER_DAY;
        p.on_insert(&meta(1, 10, 2 * SECONDS_PER_DAY));
        p.on_insert(&meta(2, 99, 3 * SECONDS_PER_DAY));
        // Touch url 1 today; url 2 is now the only stale doc.
        p.on_access(&meta(1, 10, today + 5));
        assert_eq!(p.victim(today + 6, 0), Some(UrlId(2)));
        // Touch url 2 too: SIZE branch picks the larger (url 2).
        p.on_access(&meta(2, 99, today + 7));
        assert_eq!(p.victim(today + 8, 0), Some(UrlId(2)));
    }

    #[test]
    fn periodic_target_is_comfort_level() {
        let p = PitkowRecker::new(Some(0.5), 0);
        assert_eq!(p.periodic_target(0, 80, 100), Some(50));
        assert_eq!(p.periodic_target(0, 40, 100), None);
        let p2 = PitkowRecker::new(None, 0);
        assert_eq!(p2.periodic_target(0, 80, 100), None);
        // Never purge an infinite cache.
        let p3 = PitkowRecker::default();
        assert_eq!(p3.periodic_target(0, 80, u64::MAX), None);
    }

    #[test]
    fn end_of_day_purge_runs_in_cache() {
        use crate::cache::{Cache, Outcome};
        use webcache_trace::{ClientId, Request, ServerId};
        let mut c = Cache::new(100, Box::new(PitkowRecker::new(Some(0.5), 0)));
        let req = |time, url, size| Request {
            time,
            client: ClientId(0),
            server: ServerId(0),
            url: UrlId(url),
            size,
            doc_type: DocType::Text,
            last_modified: None,
        };
        for i in 0..9 {
            assert!(matches!(
                c.request(&req(i, i as u32, 10)),
                Outcome::Miss { .. }
            ));
        }
        assert_eq!(c.used(), 90);
        // First request of the next day triggers the purge down to 50.
        c.request(&req(SECONDS_PER_DAY + 1, 100, 10));
        assert!(c.used() <= 60); // 50 after purge + 10 inserted
        assert!(c.stats().periodic_evictions >= 4);
        c.check_invariants();
    }

    #[test]
    fn removal_keeps_both_indexes_consistent() {
        let mut p = PitkowRecker::default();
        p.on_insert(&meta(1, 10, 0));
        p.on_insert(&meta(2, 20, 0));
        p.on_remove(UrlId(1));
        assert_eq!(p.len(), 1);
        assert_eq!(p.victim(SECONDS_PER_DAY, 0), Some(UrlId(2)));
        p.on_remove(UrlId(2));
        assert_eq!(p.victim(SECONDS_PER_DAY, 0), None);
    }
}
