//! GreedyDual-Size (Cao & Irani, USENIX 1997) — an extension beyond the
//! paper.
//!
//! The paper's conclusion that plain `SIZE` maximises hit rate while
//! penalising weighted hit rate directly motivated GreedyDual-Size, the
//! next step in this literature. It assigns each document a value
//! `H = L + cost/size` (here `cost = 1`, the "GDS(1)" hit-rate variant);
//! the document with minimum `H` is evicted and its `H` becomes the new
//! inflation level `L`. With `cost = size` it degenerates toward LRU; with
//! `cost = 1` it blends SIZE with an aging mechanism.
//!
//! Including it lets the benchmarks show how the 1996 taxonomy's best key
//! (SIZE) compares with its 1997 successor on the same workloads.

use crate::cache::DocMeta;
use crate::policy::RemovalPolicy;
use rustc_hash::FxHashMap;
use std::collections::BTreeSet;
use webcache_trace::{Timestamp, UrlId};

/// Cost model for GreedyDual-Size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GdCost {
    /// Every document costs 1 to fetch: maximises hit rate.
    Uniform,
    /// A document costs its size: maximises weighted hit rate (byte cost).
    Bytes,
}

/// `H` values are stored as integer-scaled fixed point so the ordering set
/// is total and hash-free. 2^20 fractional bits keeps `1/size` distinct for
/// sizes up to a megabyte and degrades gracefully above.
const FRAC_BITS: u32 = 20;

/// The GreedyDual-Size removal policy.
#[derive(Debug, Clone)]
pub struct GreedyDualSize {
    cost: GdCost,
    /// Current inflation value `L` (fixed point).
    inflation: u64,
    /// Docs ordered by ascending `H` (fixed point).
    order: BTreeSet<(u64, UrlId)>,
    values: FxHashMap<UrlId, u64>,
}

impl Default for GreedyDualSize {
    fn default() -> Self {
        GreedyDualSize::new()
    }
}

impl GreedyDualSize {
    /// GDS(1): uniform cost, the hit-rate-oriented variant.
    pub fn new() -> GreedyDualSize {
        GreedyDualSize::with_cost(GdCost::Uniform)
    }

    /// Create with an explicit cost model.
    pub fn with_cost(cost: GdCost) -> GreedyDualSize {
        GreedyDualSize {
            cost,
            inflation: 0,
            order: BTreeSet::new(),
            values: FxHashMap::default(),
        }
    }

    fn h_value(&self, meta: &DocMeta) -> u64 {
        let cost = match self.cost {
            GdCost::Uniform => 1u64 << FRAC_BITS,
            GdCost::Bytes => meta.size << FRAC_BITS,
        };
        // H = L + cost/size, saturating to stay total under pathological
        // sizes.
        self.inflation
            .saturating_add(cost / meta.size.max(1))
            .max(self.inflation + 1)
    }

    fn upsert(&mut self, meta: &DocMeta) {
        let h = self.h_value(meta);
        if let Some(old) = self.values.insert(meta.url, h) {
            self.order.remove(&(old, meta.url));
        }
        self.order.insert((h, meta.url));
    }
}

impl RemovalPolicy for GreedyDualSize {
    fn name(&self) -> String {
        match self.cost {
            GdCost::Uniform => "GD-SIZE(1)".to_string(),
            GdCost::Bytes => "GD-SIZE(BYTES)".to_string(),
        }
    }

    fn on_insert(&mut self, meta: &DocMeta) {
        self.upsert(meta);
    }

    fn on_access(&mut self, meta: &DocMeta) {
        // A hit restores the document's value at the current inflation.
        self.upsert(meta);
    }

    fn on_remove(&mut self, url: UrlId) {
        if let Some(h) = self.values.remove(&url) {
            self.order.remove(&(h, url));
        }
    }

    fn victim(&mut self, _now: Timestamp, _incoming_size: u64) -> Option<UrlId> {
        let &(h, url) = self.order.first()?;
        // Aging: the evicted document's H becomes the inflation level.
        self.inflation = h;
        Some(url)
    }

    fn len(&self) -> usize {
        self.order.len()
    }

    fn removal_position(&self, url: UrlId) -> Option<usize> {
        let h = *self.values.get(&url)?;
        Some(self.order.range(..(h, url)).count())
    }

    /// GDS state depends on eviction history, not just resident metadata:
    /// the inflation level `L` and each document's frozen `H` value cannot
    /// be recomputed from `DocMeta`. Export them explicitly, sorted by url
    /// so the byte encoding is deterministic.
    fn export_state(&self) -> Vec<u8> {
        let mut pairs: Vec<(UrlId, u64)> = self.values.iter().map(|(&u, &h)| (u, h)).collect();
        pairs.sort_unstable_by_key(|&(u, _)| u);
        let mut out = Vec::with_capacity(8 + pairs.len() * 12);
        out.extend_from_slice(&self.inflation.to_le_bytes());
        for (url, h) in pairs {
            out.extend_from_slice(&url.0.to_le_bytes());
            out.extend_from_slice(&h.to_le_bytes());
        }
        out
    }

    /// Overwrite the replay-derived `H` values with the exported ones.
    /// Every exported url must already be resident (replayed through
    /// `on_insert`) and the counts must match exactly; anything else means
    /// the checkpoint is inconsistent and the restore is rejected.
    fn import_state(&mut self, bytes: &[u8]) -> bool {
        if bytes.len() < 8 || !(bytes.len() - 8).is_multiple_of(12) {
            return false;
        }
        let u64_at = |at: usize| {
            bytes[at..at + 8]
                .try_into()
                .map(u64::from_le_bytes)
                .unwrap_or_default()
        };
        let inflation = u64_at(0);
        let pairs = (bytes.len() - 8) / 12;
        if pairs != self.values.len() {
            return false;
        }
        let mut updates = Vec::with_capacity(pairs);
        for i in 0..pairs {
            let at = 8 + i * 12;
            let url = UrlId(
                bytes[at..at + 4]
                    .try_into()
                    .map(u32::from_le_bytes)
                    .unwrap_or_default(),
            );
            let h = u64_at(at + 4);
            if !self.values.contains_key(&url) {
                return false;
            }
            updates.push((url, h));
        }
        for (url, h) in updates {
            if let Some(old) = self.values.insert(url, h) {
                self.order.remove(&(old, url));
            }
            self.order.insert((h, url));
        }
        self.inflation = inflation;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use webcache_trace::DocType;

    fn meta(url: u32, size: u64) -> DocMeta {
        DocMeta {
            url: UrlId(url),
            size,
            doc_type: DocType::Text,
            entry_time: 0,
            last_access: 0,
            nrefs: 1,
            expires: None,
            refetch_latency_ms: 0,
            type_priority: 0,
            last_modified: None,
        }
    }

    #[test]
    fn larger_documents_have_lower_value() {
        let mut p = GreedyDualSize::new();
        p.on_insert(&meta(1, 10));
        p.on_insert(&meta(2, 10_000));
        assert_eq!(p.victim(0, 0), Some(UrlId(2)));
    }

    #[test]
    fn hit_refreshes_value_above_inflation() {
        let mut p = GreedyDualSize::new();
        p.on_insert(&meta(1, 100));
        p.on_insert(&meta(2, 100));
        // Evict 1 (tie broken by id) — inflation rises to its H.
        let v = p.victim(0, 0).unwrap();
        p.on_remove(v);
        // Insert a fresh doc; its H sits above the raised inflation, so the
        // remaining old doc would normally go first …
        p.on_insert(&meta(3, 100));
        // … but touching the old doc lifts it back above the newcomer
        // (equal H, larger id loses ties — check via explicit ordering).
        let survivor = if v == UrlId(1) { UrlId(2) } else { UrlId(1) };
        p.on_access(&meta(survivor.0, 100));
        let next = p.victim(0, 0).unwrap();
        assert_eq!(next, UrlId(3).min(survivor));
    }

    #[test]
    fn aging_lets_stale_small_docs_be_evicted() {
        let mut p = GreedyDualSize::new();
        p.on_insert(&meta(1, 10_000)); // small: H ≈ 104 above inflation
                                       // Cycle many large docs through; inflation climbs past the tiny
                                       // doc's H, so it eventually becomes the victim.
        let mut evicted_tiny = false;
        for i in 2..2000u32 {
            p.on_insert(&meta(i, 1_000_000));
            let v = p.victim(0, 0).unwrap();
            p.on_remove(v);
            if v == UrlId(1) {
                evicted_tiny = true;
                break;
            }
        }
        assert!(evicted_tiny, "inflation never aged the tiny document out");
    }

    #[test]
    fn byte_cost_model_is_size_neutral_at_insert() {
        let mut p = GreedyDualSize::with_cost(GdCost::Bytes);
        p.on_insert(&meta(1, 10));
        p.on_insert(&meta(2, 10_000));
        // cost/size = 1 for both: tie, broken by url id.
        assert_eq!(p.victim(0, 0), Some(UrlId(1)));
        assert_eq!(p.name(), "GD-SIZE(BYTES)");
    }

    #[test]
    fn export_import_round_trips_inflation_and_values() {
        // Build a policy with non-trivial history so inflation != 0 and the
        // surviving docs carry H values a fresh replay could not recompute.
        let mut p = GreedyDualSize::new();
        let mut resident = Vec::new();
        for i in 1..50u32 {
            let m = meta(i, 100 + i as u64 * 37);
            p.on_insert(&m);
            resident.push(m);
            if i % 3 == 0 {
                let v = p.victim(0, 0).unwrap();
                p.on_remove(v);
                resident.retain(|m| m.url != v);
            }
        }
        let state = p.export_state();

        // Cold restore: replay resident metas in a different order, then
        // import the exported state.
        let mut q = GreedyDualSize::new();
        for m in resident.iter().rev() {
            q.on_insert(m);
        }
        assert!(q.import_state(&state));
        assert_eq!(p.inflation, q.inflation);
        assert_eq!(p.order, q.order);

        // Both must now pick identical victims forever.
        for _ in 0..resident.len() {
            let a = p.victim(0, 0);
            let b = q.victim(0, 0);
            assert_eq!(a, b);
            if let Some(v) = a {
                p.on_remove(v);
                q.on_remove(v);
            }
        }
    }

    #[test]
    fn import_rejects_inconsistent_state() {
        let mut p = GreedyDualSize::new();
        p.on_insert(&meta(1, 10));
        // Truncated / misaligned byte strings.
        assert!(!p.import_state(&[0u8; 4]));
        assert!(!p.import_state(&[0u8; 15]));
        // Count mismatch: export from a policy with two docs.
        let mut two = GreedyDualSize::new();
        two.on_insert(&meta(1, 10));
        two.on_insert(&meta(2, 10));
        assert!(!p.import_state(&two.export_state()));
        // Non-resident url in the export.
        let mut other = GreedyDualSize::new();
        other.on_insert(&meta(9, 10));
        assert!(!p.import_state(&other.export_state()));
        // A valid self-export still imports.
        let state = p.export_state();
        assert!(p.import_state(&state));
    }

    #[test]
    fn remove_and_empty_behaviour() {
        let mut p = GreedyDualSize::new();
        assert_eq!(p.victim(0, 0), None);
        p.on_insert(&meta(1, 10));
        p.on_remove(UrlId(1));
        assert_eq!(p.victim(0, 0), None);
        assert!(p.is_empty());
    }
}
