//! The sorting keys of Table 1, plus the extension keys of section 5.
//!
//! The paper's taxonomy views a removal policy as sorting the cached
//! documents by one or more keys and removing documents from the *head* of
//! the sorted list. Each [`Key`] therefore maps a document's metadata to a
//! *rank*; documents are ordered by ascending rank and the lowest-ranked
//! document is removed first. The sign conventions below encode the "Sort
//! Order" column of Table 1:
//!
//! | Key            | Removal order (head of list)            | Rank        |
//! |----------------|------------------------------------------|-------------|
//! | `SIZE`         | largest file removed first               | `-size`     |
//! | `⌊log₂ SIZE⌋`  | one of the largest files removed first   | `-⌊log₂ s⌋` |
//! | `ETIME`        | oldest entry removed first (FIFO)        | `etime`     |
//! | `ATIME`        | least recently used removed first (LRU)  | `atime`     |
//! | `DAY(ATIME)`   | last accessed the most days ago first    | `day(atime)`|
//! | `NREF`         | least referenced removed first (LFU)     | `nref`      |
//! | `RANDOM`       | uniformly random (deterministic w/ seed)  | hash        |

use crate::cache::DocMeta;
use serde::{Deserialize, Serialize};
use webcache_trace::day_of;

/// A sorting key from Table 1 of the paper, or one of the extension keys
/// the paper's section 5 proposes as future work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Key {
    /// `SIZE`: size of a cached document in bytes; largest removed first.
    Size,
    /// `⌊log₂(SIZE)⌋`: one of the largest files removed first. Produces
    /// ties, which is why the paper uses it when studying secondary keys.
    Log2Size,
    /// `ETIME`: time the document entered the cache; oldest removed first.
    /// Alone, this is FIFO.
    EntryTime,
    /// `ATIME`: time of last access ("recency"); least recently used
    /// removed first. Alone, this is LRU.
    AccessTime,
    /// `DAY(ATIME)`: day of last access; documents last accessed the most
    /// days ago are removed first. Used by Pitkow/Recker.
    DayOfAccess,
    /// `NREF`: number of references; least referenced removed first.
    /// Alone, this is LFU.
    NRef,
    /// Uniformly random order, deterministic for a given policy seed so a
    /// sort using it is still a total order.
    Random,
    /// Extension (section 5, open problem 1): document type. Types earlier
    /// in the configured priority list are removed first. The default
    /// priority removes large continuous media first and text last, keeping
    /// text latency low.
    DocTypePriority,
    /// Extension (section 5, open problem 1): estimated refetch latency.
    /// Cheapest-to-refetch documents are removed first, preferentially
    /// caching documents behind slow links (the paper's transatlantic
    /// example).
    Latency,
    /// Extension (section 5, open problem 4): expiration time, Harvest
    /// style. Documents that expire soonest (or are already expired) are
    /// removed first; documents without an expiry are removed last.
    Expiry,
}

impl Key {
    /// The six keys of Table 1, in the order the table lists them.
    pub const TABLE1: [Key; 6] = [
        Key::Size,
        Key::Log2Size,
        Key::EntryTime,
        Key::AccessTime,
        Key::DayOfAccess,
        Key::NRef,
    ];

    /// The paper's name for this key.
    pub fn label(self) -> &'static str {
        match self {
            Key::Size => "SIZE",
            Key::Log2Size => "LOG2(SIZE)",
            Key::EntryTime => "ETIME",
            Key::AccessTime => "ATIME",
            Key::DayOfAccess => "DAY(ATIME)",
            Key::NRef => "NREF",
            Key::Random => "RANDOM",
            Key::DocTypePriority => "DOCTYPE",
            Key::Latency => "LATENCY",
            Key::Expiry => "EXPIRY",
        }
    }

    /// The removal rank of a document under this key: documents sort by
    /// ascending rank and the minimum-rank document is removed first.
    ///
    /// `salt` seeds the deterministic [`Key::Random`] order so that two
    /// policies (or two runs) can use independent random orders while each
    /// remains a stable total order.
    pub fn rank(self, meta: &DocMeta, salt: u64) -> i64 {
        match self {
            Key::Size => -(meta.size as i64),
            Key::Log2Size => -(meta.size.max(1).ilog2() as i64),
            Key::EntryTime => meta.entry_time as i64,
            Key::AccessTime => meta.last_access as i64,
            Key::DayOfAccess => day_of(meta.last_access) as i64,
            Key::NRef => meta.nrefs as i64,
            Key::Random => (splitmix64(meta.url.0 as u64 ^ salt) >> 1) as i64,
            Key::DocTypePriority => meta.type_priority as i64,
            Key::Latency => meta.refetch_latency_ms as i64,
            Key::Expiry => match meta.expires {
                Some(t) => t as i64,
                None => i64::MAX,
            },
        }
    }

    /// Whether the rank of this key can change when the document is
    /// accessed (and the policy's sorted structure must be updated).
    pub fn access_sensitive(self) -> bool {
        matches!(self, Key::AccessTime | Key::DayOfAccess | Key::NRef)
    }
}

impl std::fmt::Display for Key {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// SplitMix64 (re-exported from [`crate::util`]) — kept under this path
/// for the policy-internal callers.
pub(crate) use crate::util::splitmix64;

/// A (primary, secondary, tertiary) key combination — one removal policy in
/// the paper's taxonomy. The tertiary key is always [`Key::Random`] in the
/// paper ("we expect that a tie on both the primary and the secondary key
/// is very rare").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct KeySpec {
    /// Primary sorting key.
    pub primary: Key,
    /// Secondary sorting key (tie-break on primary).
    pub secondary: Key,
    /// Tertiary sorting key (tie-break on secondary).
    pub tertiary: Key,
    /// Seed for deterministic random ordering.
    pub salt: u64,
}

impl KeySpec {
    /// A policy with the given primary key, random secondary and tertiary.
    pub fn primary(primary: Key) -> KeySpec {
        KeySpec {
            primary,
            secondary: Key::Random,
            tertiary: Key::Random,
            salt: 0,
        }
    }

    /// A policy with the given primary and secondary keys, random tertiary.
    pub fn pair(primary: Key, secondary: Key) -> KeySpec {
        KeySpec {
            primary,
            secondary,
            tertiary: Key::Random,
            salt: 0,
        }
    }

    /// Replace the random-order seed.
    pub fn with_salt(mut self, salt: u64) -> KeySpec {
        self.salt = salt;
        self
    }

    /// The removal rank triple of a document; documents sort ascending and
    /// the minimum is removed first. A fourth component (the URL id) is
    /// appended by the sorted structure to guarantee a total order.
    pub fn rank(&self, meta: &DocMeta) -> (i64, i64, i64) {
        (
            self.primary.rank(meta, self.salt),
            // Distinct salts so secondary/tertiary Random orders are
            // independent of each other.
            self.secondary.rank(meta, self.salt ^ 0xA5A5_5A5A_DEAD_BEEF),
            self.tertiary.rank(meta, self.salt ^ 0x0F0F_F0F0_1234_5678),
        )
    }

    /// Whether any component key is access-sensitive.
    pub fn access_sensitive(&self) -> bool {
        self.primary.access_sensitive()
            || self.secondary.access_sensitive()
            || self.tertiary.access_sensitive()
    }

    /// Human-readable name, e.g. `"SIZE/RANDOM"`.
    pub fn name(&self) -> String {
        format!("{}/{}", self.primary.label(), self.secondary.label())
    }

    /// The 36 (primary, secondary) combinations of the paper's experiment
    /// design: each of the six Table 1 keys as primary, combined with
    /// random plus the five other Table 1 keys as secondary ("An equal
    /// primary and secondary key is useless. We additionally use random
    /// replacement as a secondary key.").
    pub fn all36(salt: u64) -> Vec<KeySpec> {
        let mut out = Vec::with_capacity(36);
        for &p in &Key::TABLE1 {
            out.push(KeySpec::pair(p, Key::Random).with_salt(salt));
            for &s in &Key::TABLE1 {
                if s != p {
                    out.push(KeySpec::pair(p, s).with_salt(salt));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use webcache_trace::{DocType, UrlId, SECONDS_PER_DAY};

    fn meta(url: u32, size: u64, etime: u64, atime: u64, nrefs: u64) -> DocMeta {
        DocMeta {
            url: UrlId(url),
            size,
            doc_type: DocType::Text,
            entry_time: etime,
            last_access: atime,
            nrefs,
            expires: None,
            refetch_latency_ms: 0,
            type_priority: 0,
            last_modified: None,
        }
    }

    #[test]
    fn size_removes_largest_first() {
        let big = meta(0, 10_000, 0, 0, 1);
        let small = meta(1, 10, 0, 0, 1);
        assert!(Key::Size.rank(&big, 0) < Key::Size.rank(&small, 0));
    }

    #[test]
    fn log2size_ties_similar_sizes() {
        let a = meta(0, 1024, 0, 0, 1);
        let b = meta(1, 2047, 0, 0, 1);
        let c = meta(2, 2048, 0, 0, 1);
        assert_eq!(Key::Log2Size.rank(&a, 0), Key::Log2Size.rank(&b, 0));
        assert!(Key::Log2Size.rank(&c, 0) < Key::Log2Size.rank(&a, 0));
        // Size 0 must not panic (max(1) guard).
        let z = meta(3, 0, 0, 0, 1);
        assert_eq!(Key::Log2Size.rank(&z, 0), 0);
    }

    #[test]
    fn etime_is_fifo_and_atime_is_lru() {
        let old = meta(0, 5, 1, 100, 1);
        let new = meta(1, 5, 2, 50, 1);
        // FIFO removes the earliest entry regardless of access.
        assert!(Key::EntryTime.rank(&old, 0) < Key::EntryTime.rank(&new, 0));
        // LRU removes the stalest access regardless of entry.
        assert!(Key::AccessTime.rank(&new, 0) < Key::AccessTime.rank(&old, 0));
    }

    #[test]
    fn day_of_access_buckets_by_day() {
        let morning = meta(0, 5, 0, 3 * SECONDS_PER_DAY + 10, 1);
        let evening = meta(1, 5, 0, 3 * SECONDS_PER_DAY + 80_000, 1);
        let yesterday = meta(2, 5, 0, 2 * SECONDS_PER_DAY + 80_000, 1);
        assert_eq!(
            Key::DayOfAccess.rank(&morning, 0),
            Key::DayOfAccess.rank(&evening, 0)
        );
        assert!(Key::DayOfAccess.rank(&yesterday, 0) < Key::DayOfAccess.rank(&morning, 0));
    }

    #[test]
    fn nref_is_lfu() {
        let hot = meta(0, 5, 0, 0, 100);
        let cold = meta(1, 5, 0, 0, 2);
        assert!(Key::NRef.rank(&cold, 0) < Key::NRef.rank(&hot, 0));
    }

    #[test]
    fn random_is_deterministic_per_salt_and_nonnegative() {
        let m = meta(7, 5, 0, 0, 1);
        let r1 = Key::Random.rank(&m, 42);
        let r2 = Key::Random.rank(&m, 42);
        let r3 = Key::Random.rank(&m, 43);
        assert_eq!(r1, r2);
        assert_ne!(r1, r3);
        assert!(r1 >= 0);
    }

    #[test]
    fn expiry_orders_expired_first_and_no_expiry_last() {
        let mut soon = meta(0, 5, 0, 0, 1);
        soon.expires = Some(10);
        let mut late = meta(1, 5, 0, 0, 1);
        late.expires = Some(1_000_000);
        let never = meta(2, 5, 0, 0, 1);
        assert!(Key::Expiry.rank(&soon, 0) < Key::Expiry.rank(&late, 0));
        assert!(Key::Expiry.rank(&late, 0) < Key::Expiry.rank(&never, 0));
    }

    #[test]
    fn all36_has_36_distinct_combinations() {
        let combos = KeySpec::all36(1);
        assert_eq!(combos.len(), 36);
        let set: std::collections::HashSet<(Key, Key)> =
            combos.iter().map(|c| (c.primary, c.secondary)).collect();
        assert_eq!(set.len(), 36);
        // No combination has equal primary and secondary Table 1 keys.
        assert!(combos.iter().all(|c| c.primary != c.secondary));
    }

    #[test]
    fn rank_triples_order_by_primary_first() {
        let spec = KeySpec::pair(Key::Size, Key::AccessTime);
        let big_stale = meta(0, 100, 0, 1, 1);
        let small_fresh = meta(1, 10, 0, 99, 1);
        assert!(spec.rank(&big_stale) < spec.rank(&small_fresh));
        // Equal primary falls through to secondary (ATIME: stale first).
        let a = meta(2, 50, 0, 5, 1);
        let b = meta(3, 50, 0, 6, 1);
        assert!(spec.rank(&a) < spec.rank(&b));
    }

    #[test]
    fn access_sensitivity() {
        assert!(KeySpec::pair(Key::Size, Key::AccessTime).access_sensitive());
        assert!(KeySpec::pair(Key::NRef, Key::Random).access_sensitive());
        // Random tertiary is not access-sensitive.
        assert!(!KeySpec::pair(Key::Size, Key::EntryTime).access_sensitive());
    }
}
