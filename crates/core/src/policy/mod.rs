//! Removal policies: the paper's sorting-key taxonomy and the literature
//! policies it subsumes.
//!
//! "A removal policy is viewed as having two phases. First, it sorts
//! documents in the cache according to one or more keys. Then it removes
//! zero or more documents from the head of the sorted list until a criteria
//! is satisfied." (section 1.2)
//!
//! * [`key`] — the Table 1 sorting keys and [`KeySpec`] combinations.
//! * [`sorted`] — [`SortedPolicy`], the generic taxonomy policy backed by
//!   an incrementally-maintained sorted structure.
//! * [`named`] — constructors for FIFO, LRU, LFU and Hyper-G (Table 3).
//! * [`lru_min`] — the exact LRU-MIN algorithm of Abrams et al. 1995.
//! * [`pitkow_recker`] — the exact Pitkow/Recker policy, including its
//!   end-of-day periodic purge to a comfort level.
//! * [`greedy_dual`] — GreedyDual-Size (Cao & Irani 1997), included as an
//!   extension showing the taxonomy generalises to value-based policies.

pub mod greedy_dual;
pub mod key;
pub mod lru_min;
pub mod named;
pub mod pitkow_recker;
pub mod sorted;

pub use greedy_dual::GreedyDualSize;
pub use key::{Key, KeySpec};
pub use lru_min::LruMin;
pub use pitkow_recker::PitkowRecker;
pub use sorted::SortedPolicy;

use crate::cache::DocMeta;
use webcache_trace::{Timestamp, UrlId};

/// A cache removal policy.
///
/// The [`Cache`](crate::cache::Cache) notifies the policy of every
/// insertion, access (with already-updated metadata) and removal, and asks
/// it for a victim whenever space must be freed. Implementations must track
/// exactly the set of resident documents.
///
/// `Send` is a supertrait so that boxed policies (and the caches holding
/// them) can move across threads for parallel experiment sweeps and the
/// threaded proxy.
pub trait RemovalPolicy: Send {
    /// Display name (e.g. `"SIZE/RANDOM"`, `"LRU-MIN"`).
    fn name(&self) -> String;

    /// A document was inserted.
    fn on_insert(&mut self, meta: &DocMeta);

    /// A resident document was accessed; `meta` carries the updated
    /// `last_access` and `nrefs`.
    fn on_access(&mut self, meta: &DocMeta);

    /// A document left the cache (eviction or invalidation).
    fn on_remove(&mut self, url: UrlId);

    /// Choose the next document to remove. `incoming_size` is the size of
    /// the document being fetched (LRU-MIN keys its thresholds off it;
    /// taxonomy policies ignore it). Returns `None` only when no document
    /// is resident.
    fn victim(&mut self, now: Timestamp, incoming_size: u64) -> Option<UrlId>;

    /// Number of documents the policy currently tracks.
    fn len(&self) -> usize;

    /// True when the policy tracks no documents.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Position of a document in the current removal order (0 = next
    /// victim), when the policy maintains an inspectable order. Used by
    /// the Appendix A instrumentation ("location in sorted list of each
    /// URL hit"); `None` when unknown or untracked. May be O(n) unless
    /// [`RemovalPolicy::enable_position_tracking`] was called.
    fn removal_position(&self, _url: UrlId) -> Option<usize> {
        None
    }

    /// Opt in to whatever auxiliary bookkeeping makes
    /// [`RemovalPolicy::removal_position`] sublinear. Callers that query
    /// positions on every request (the Appendix A instrumentation) invoke
    /// this once up front; everyone else skips it so the hot path carries
    /// no extra index maintenance. The default is a no-op.
    fn enable_position_tracking(&mut self) {}

    /// Periodic-removal hook, called by the cache at each simulated day
    /// boundary. Returning `Some(target)` makes the cache evict victims
    /// until at most `target` bytes remain (Pitkow/Recker's end-of-day run
    /// down to a comfort level). The default — pure on-demand removal —
    /// returns `None`.
    fn periodic_target(&self, _now: Timestamp, _used: u64, _capacity: u64) -> Option<u64> {
        None
    }

    /// Serialize any policy state that a checkpoint restore cannot
    /// reconstruct by replaying [`RemovalPolicy::on_insert`] over the
    /// resident documents' metadata. Most policies derive their entire
    /// order from `DocMeta` fields and return an empty vector (the
    /// default); GreedyDual-Size exports its inflation value and per-doc
    /// H values, which depend on eviction history.
    fn export_state(&self) -> Vec<u8> {
        Vec::new()
    }

    /// Restore state exported by [`RemovalPolicy::export_state`], called
    /// *after* the resident set has been replayed through `on_insert`.
    /// Returns `false` when the bytes are malformed or inconsistent with
    /// the resident set (the caller must then discard the checkpoint).
    /// The default accepts exactly the default export: empty bytes.
    fn import_state(&mut self, bytes: &[u8]) -> bool {
        bytes.is_empty()
    }
}

/// A policy that never evicts; pair it with [`Cache::infinite`]
/// (Experiment 1). Asking it for a victim panics, which is correct: an
/// infinite cache must never need one.
///
/// [`Cache::infinite`]: crate::cache::Cache::infinite
#[derive(Debug, Default)]
pub struct NeverEvict {
    resident: usize,
}

impl NeverEvict {
    /// Create the no-op policy.
    pub fn new() -> Self {
        Self::default()
    }
}

impl RemovalPolicy for NeverEvict {
    fn name(&self) -> String {
        "NEVER-EVICT".to_string()
    }

    fn on_insert(&mut self, _meta: &DocMeta) {
        self.resident += 1;
    }

    fn on_access(&mut self, _meta: &DocMeta) {}

    fn on_remove(&mut self, _url: UrlId) {
        self.resident -= 1;
    }

    fn victim(&mut self, _now: Timestamp, _incoming_size: u64) -> Option<UrlId> {
        panic!("NeverEvict asked for a victim: use it only with an infinite cache");
    }

    fn len(&self) -> usize {
        self.resident
    }
}
