//! Literature policies expressed as sorting procedures — Table 3 of the
//! paper.
//!
//! | Policy   | Key 1 (removal order)         | Key 2  | Key 3 |
//! |----------|-------------------------------|--------|-------|
//! | FIFO     | ETIME (smallest)              | —      | —     |
//! | LRU      | ATIME (smallest)              | —      | —     |
//! | LFU      | NREF (smallest)               | —      | —     |
//! | Hyper-G  | NREF (smallest)               | ATIME  | SIZE  |
//!
//! LRU-MIN and Pitkow/Recker cannot be expressed exactly as a fixed key
//! triple; see [`crate::policy::lru_min`] and
//! [`crate::policy::pitkow_recker`] for the exact algorithms.

use crate::policy::key::{Key, KeySpec};
use crate::policy::sorted::SortedPolicy;
use crate::policy::{GreedyDualSize, LruMin, PitkowRecker, RemovalPolicy};

/// FIFO: remove the document that entered the cache first.
pub fn fifo() -> SortedPolicy {
    SortedPolicy::named(KeySpec::primary(Key::EntryTime), "FIFO")
}

/// LRU: remove the least recently used document.
pub fn lru() -> SortedPolicy {
    SortedPolicy::named(KeySpec::primary(Key::AccessTime), "LRU")
}

/// LFU: remove the least frequently referenced document.
pub fn lfu() -> SortedPolicy {
    SortedPolicy::named(KeySpec::primary(Key::NRef), "LFU")
}

/// The Hyper-G server's policy: LFU, ties broken by LRU, then by size
/// (largest removed first). (Hyper-G's real first key — "is this a Hyper-G
/// document" — is omitted exactly as in the paper, whose traces contain no
/// Hyper-G documents.)
pub fn hyper_g() -> SortedPolicy {
    SortedPolicy::named(
        KeySpec {
            primary: Key::NRef,
            secondary: Key::AccessTime,
            tertiary: Key::Size,
            salt: 0,
        },
        "HYPER-G",
    )
}

/// SIZE: remove the largest document first — the winning primary key of the
/// paper's Experiment 2.
pub fn size() -> SortedPolicy {
    SortedPolicy::named(KeySpec::primary(Key::Size), "SIZE")
}

/// ⌊log₂(SIZE)⌋ with LRU tie-break: the paper's approximation of the value
/// of combining size and recency (its stand-in for LRU-MIN's spirit).
pub fn log2size_lru() -> SortedPolicy {
    SortedPolicy::named(
        KeySpec::pair(Key::Log2Size, Key::AccessTime),
        "LOG2SIZE-LRU",
    )
}

/// Every named policy this crate implements, constructed fresh. Useful for
/// sweeps and for the `experiments` CLI.
pub fn all_named() -> Vec<Box<dyn RemovalPolicy>> {
    vec![
        Box::new(fifo()),
        Box::new(lru()),
        Box::new(lfu()),
        Box::new(hyper_g()),
        Box::new(size()),
        Box::new(log2size_lru()),
        Box::new(LruMin::new()),
        Box::new(PitkowRecker::default()),
        Box::new(GreedyDualSize::new()),
    ]
}

/// Construct a named policy by its display name, or a `KeySpec` policy from
/// `"PRIMARY/SECONDARY"` notation. Returns `None` for unknown names.
pub fn by_name(name: &str) -> Option<Box<dyn RemovalPolicy>> {
    let canon = name.to_ascii_uppercase();
    Some(match canon.as_str() {
        "FIFO" => Box::new(fifo()),
        "LRU" => Box::new(lru()),
        "LFU" => Box::new(lfu()),
        "HYPER-G" | "HYPERG" => Box::new(hyper_g()),
        "SIZE" => Box::new(size()),
        "LOG2SIZE-LRU" => Box::new(log2size_lru()),
        "LRU-MIN" | "LRUMIN" => Box::new(LruMin::new()),
        "PITKOW-RECKER" | "PITKOW/RECKER" => Box::new(PitkowRecker::default()),
        "GD-SIZE" | "GREEDYDUAL-SIZE" => Box::new(GreedyDualSize::new()),
        _ => {
            let (p, s) = canon.split_once('/')?;
            let parse = |k: &str| -> Option<Key> {
                Some(match k {
                    "SIZE" => Key::Size,
                    "LOG2SIZE" | "LOG2(SIZE)" => Key::Log2Size,
                    "ETIME" => Key::EntryTime,
                    "ATIME" => Key::AccessTime,
                    "DAY" | "DAY(ATIME)" => Key::DayOfAccess,
                    "NREF" | "NREFS" => Key::NRef,
                    "RANDOM" => Key::Random,
                    "DOCTYPE" => Key::DocTypePriority,
                    "LATENCY" => Key::Latency,
                    "EXPIRY" => Key::Expiry,
                    _ => return None,
                })
            };
            Box::new(SortedPolicy::new(KeySpec::pair(parse(p)?, parse(s)?)))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::DocMeta;
    use webcache_trace::{DocType, UrlId};

    fn meta(url: u32, size: u64, etime: u64, atime: u64, nrefs: u64) -> DocMeta {
        DocMeta {
            url: UrlId(url),
            size,
            doc_type: DocType::Text,
            entry_time: etime,
            last_access: atime,
            nrefs,
            expires: None,
            refetch_latency_ms: 0,
            type_priority: 0,
            last_modified: None,
        }
    }

    /// Table 3 equivalence: FIFO == sort by increasing ETIME.
    #[test]
    fn fifo_equivalence() {
        let mut p = fifo();
        p.on_insert(&meta(1, 10, 3, 9, 5));
        p.on_insert(&meta(2, 99, 1, 99, 1));
        assert_eq!(p.victim(100, 0), Some(UrlId(2)));
        assert_eq!(p.name(), "FIFO");
    }

    /// Table 3 equivalence: LFU == sort by increasing NREF.
    #[test]
    fn lfu_equivalence() {
        let mut p = lfu();
        p.on_insert(&meta(1, 10, 0, 0, 1));
        p.on_insert(&meta(2, 10, 1, 1, 1));
        p.on_access(&meta(1, 10, 0, 2, 2));
        assert_eq!(p.victim(3, 0), Some(UrlId(2)));
    }

    /// Hyper-G: NREF primary, ATIME secondary, SIZE tertiary
    /// (largest-first on the final tie).
    #[test]
    fn hyper_g_key_cascade() {
        let mut p = hyper_g();
        // Same NREF and ATIME, different sizes: larger goes first.
        p.on_insert(&meta(1, 10, 0, 5, 1));
        p.on_insert(&meta(2, 99, 0, 5, 1));
        assert_eq!(p.victim(6, 0), Some(UrlId(2)));
        // Different ATIME dominates size.
        p.on_insert(&meta(3, 1, 0, 2, 1));
        assert_eq!(p.victim(6, 0), Some(UrlId(3)));
        // Different NREF dominates everything.
        p.on_access(&meta(3, 1, 0, 6, 2));
        p.on_access(&meta(2, 99, 0, 7, 2));
        assert_eq!(p.victim(8, 0), Some(UrlId(1)));
    }

    #[test]
    fn by_name_resolves_named_and_keyspec_policies() {
        for n in [
            "FIFO",
            "LRU",
            "LFU",
            "HYPER-G",
            "SIZE",
            "LRU-MIN",
            "PITKOW-RECKER",
            "GD-SIZE",
            "SIZE/ATIME",
            "log2size/nref",
            "DAY/RANDOM",
        ] {
            assert!(by_name(n).is_some(), "missing policy {n}");
        }
        assert!(by_name("NOPE").is_none());
        assert!(by_name("SIZE/NOPE").is_none());
    }

    #[test]
    fn all_named_constructs_distinct_policies() {
        let all = all_named();
        let names: std::collections::HashSet<String> = all.iter().map(|p| p.name()).collect();
        assert_eq!(names.len(), all.len());
    }
}
