//! [`SortedPolicy`]: the generic taxonomy policy.
//!
//! Keeps the cached documents in a sorted structure ordered by the
//! [`KeySpec`] rank triple, exactly as the paper describes: "the class of
//! removal policies in §1.2 maintains a sorted list. If the list is kept
//! sorted as the proxy operates, then the removal policy merely removes the
//! head of the list" (section 1.3). The structure here is a `BTreeSet`
//! keyed by `(rank, url)`, so head removal is `O(log n)` and rank updates
//! on access are delete+insert. DESIGN.md decision D1; the alternative
//! (re-sorting on demand) is measured by the `eviction_ablation` bench.

use crate::cache::DocMeta;
use crate::policy::key::KeySpec;
use crate::policy::RemovalPolicy;
use std::collections::{BTreeSet, HashMap};
use webcache_trace::{Timestamp, UrlId};

/// Rank triple plus URL id: a total order over cached documents.
type Entry = ((i64, i64, i64), UrlId);

/// A removal policy defined by a [`KeySpec`] (primary, secondary, tertiary
/// key), per the paper's taxonomy. 36 combinations of Table 1 keys —
/// including FIFO, LRU, LFU and Hyper-G — are instances of this one type.
#[derive(Debug, Clone)]
pub struct SortedPolicy {
    spec: KeySpec,
    order: BTreeSet<Entry>,
    ranks: HashMap<UrlId, (i64, i64, i64)>,
    name_override: Option<&'static str>,
}

impl SortedPolicy {
    /// Create a policy sorting by `spec`.
    pub fn new(spec: KeySpec) -> SortedPolicy {
        SortedPolicy {
            spec,
            order: BTreeSet::new(),
            ranks: HashMap::new(),
            name_override: None,
        }
    }

    /// Create with a literature name (used by [`crate::policy::named`]).
    pub fn named(spec: KeySpec, name: &'static str) -> SortedPolicy {
        SortedPolicy {
            name_override: Some(name),
            ..SortedPolicy::new(spec)
        }
    }

    /// The key specification this policy sorts by.
    pub fn spec(&self) -> KeySpec {
        self.spec
    }

    /// The documents in removal order (head first). Exposed for tests and
    /// for reproducing Table 2's sorted lists.
    pub fn sorted_urls(&self) -> Vec<UrlId> {
        self.order.iter().map(|&(_, url)| url).collect()
    }

    fn upsert(&mut self, meta: &DocMeta) {
        let rank = self.spec.rank(meta);
        if let Some(old) = self.ranks.insert(meta.url, rank) {
            self.order.remove(&(old, meta.url));
        }
        self.order.insert((rank, meta.url));
    }
}

impl RemovalPolicy for SortedPolicy {
    fn name(&self) -> String {
        match self.name_override {
            Some(n) => n.to_string(),
            None => self.spec.name(),
        }
    }

    fn on_insert(&mut self, meta: &DocMeta) {
        self.upsert(meta);
    }

    fn on_access(&mut self, meta: &DocMeta) {
        // Only re-rank when an access can change the rank.
        if self.spec.access_sensitive() {
            self.upsert(meta);
        }
    }

    fn on_remove(&mut self, url: UrlId) {
        if let Some(rank) = self.ranks.remove(&url) {
            self.order.remove(&(rank, url));
        }
    }

    fn victim(&mut self, _now: Timestamp, _incoming_size: u64) -> Option<UrlId> {
        self.order.first().map(|&(_, url)| url)
    }

    fn len(&self) -> usize {
        self.order.len()
    }

    fn removal_position(&self, url: UrlId) -> Option<usize> {
        let rank = *self.ranks.get(&url)?;
        Some(self.order.range(..(rank, url)).count())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::key::Key;
    use webcache_trace::DocType;

    fn meta(url: u32, size: u64, etime: u64, atime: u64, nrefs: u64) -> DocMeta {
        DocMeta {
            url: UrlId(url),
            size,
            doc_type: DocType::Text,
            entry_time: etime,
            last_access: atime,
            nrefs,
            expires: None,
            refetch_latency_ms: 0,
            type_priority: 0,
            last_modified: None,
        }
    }

    #[test]
    fn lru_order_updates_on_access() {
        let mut p = SortedPolicy::new(KeySpec::primary(Key::AccessTime));
        p.on_insert(&meta(1, 5, 0, 0, 1));
        p.on_insert(&meta(2, 5, 1, 1, 1));
        assert_eq!(p.victim(10, 0), Some(UrlId(1)));
        // Touch 1 at t=5: now 2 is least recently used.
        p.on_access(&meta(1, 5, 0, 5, 2));
        assert_eq!(p.victim(10, 0), Some(UrlId(2)));
        assert_eq!(p.sorted_urls(), vec![UrlId(2), UrlId(1)]);
    }

    #[test]
    fn fifo_ignores_accesses() {
        let mut p = SortedPolicy::new(KeySpec::primary(Key::EntryTime));
        p.on_insert(&meta(1, 5, 0, 0, 1));
        p.on_insert(&meta(2, 5, 1, 1, 1));
        p.on_access(&meta(1, 5, 0, 99, 2));
        assert_eq!(p.victim(100, 0), Some(UrlId(1)));
    }

    #[test]
    fn size_primary_with_lru_secondary_breaks_ties() {
        let mut p = SortedPolicy::new(KeySpec::pair(Key::Size, Key::AccessTime));
        p.on_insert(&meta(1, 100, 0, 50, 1)); // same size, fresher
        p.on_insert(&meta(2, 100, 0, 10, 1)); // same size, staler
        p.on_insert(&meta(3, 10, 0, 0, 1)); // small
        assert_eq!(p.sorted_urls(), vec![UrlId(2), UrlId(1), UrlId(3)]);
    }

    #[test]
    fn remove_keeps_structures_consistent() {
        let mut p = SortedPolicy::new(KeySpec::primary(Key::Size));
        p.on_insert(&meta(1, 100, 0, 0, 1));
        p.on_insert(&meta(2, 50, 0, 0, 1));
        p.on_remove(UrlId(1));
        assert_eq!(p.len(), 1);
        assert_eq!(p.victim(0, 0), Some(UrlId(2)));
        p.on_remove(UrlId(2));
        assert_eq!(p.victim(0, 0), None);
        assert!(p.is_empty());
        // Removing an unknown URL is a no-op.
        p.on_remove(UrlId(99));
        assert_eq!(p.len(), 0);
    }

    #[test]
    fn reinsert_replaces_rank() {
        let mut p = SortedPolicy::new(KeySpec::primary(Key::Size));
        p.on_insert(&meta(1, 100, 0, 0, 1));
        // Same URL re-inserted with a different size must not duplicate.
        p.on_insert(&meta(1, 10, 1, 1, 1));
        assert_eq!(p.len(), 1);
        p.on_insert(&meta(2, 50, 0, 0, 1));
        assert_eq!(p.victim(0, 0), Some(UrlId(2)));
    }

    #[test]
    fn random_order_is_stable_and_salt_dependent() {
        let mk = |salt| {
            let mut p = SortedPolicy::new(KeySpec::primary(Key::Random).with_salt(salt));
            for i in 0..20 {
                p.on_insert(&meta(i, 5, 0, 0, 1));
            }
            p.sorted_urls()
        };
        assert_eq!(mk(1), mk(1));
        assert_ne!(mk(1), mk(2));
    }

    #[test]
    fn nref_promotes_on_access() {
        let mut p = SortedPolicy::new(KeySpec::pair(Key::NRef, Key::EntryTime));
        p.on_insert(&meta(1, 5, 0, 0, 1));
        p.on_insert(&meta(2, 5, 1, 1, 1));
        // 1 gets referenced twice more; 2 stays at 1 ref.
        p.on_access(&meta(1, 5, 0, 2, 2));
        p.on_access(&meta(1, 5, 0, 3, 3));
        assert_eq!(p.victim(5, 0), Some(UrlId(2)));
        // Tie on NREF broken by ETIME (oldest first).
        p.on_access(&meta(2, 5, 1, 4, 2));
        p.on_access(&meta(2, 5, 1, 5, 3));
        assert_eq!(p.victim(6, 0), Some(UrlId(1)));
    }
}
