//! [`SortedPolicy`]: the generic taxonomy policy.
//!
//! Keeps the cached documents in a sorted structure ordered by the
//! [`KeySpec`] rank triple, exactly as the paper describes: "the class of
//! removal policies in §1.2 maintains a sorted list. If the list is kept
//! sorted as the proxy operates, then the removal policy merely removes the
//! head of the list" (section 1.3). The structure here is a min-heap over
//! `(rank, url)` with *lazy deletion*: a rank update pushes the new entry
//! and leaves the old one in place, and victim selection pops entries whose
//! rank no longer matches the [`RankSlab`] ground truth. Head selection is
//! therefore amortised `O(log n)` with array (not pointer-chasing)
//! constants, and picks exactly the entry a fully-sorted list would — the
//! smallest live `(rank, url)`. DESIGN.md decisions D1 and D8; the
//! alternatives (re-sorting on demand, `BTreeSet` ordering) are measured by
//! the `ablation` bench and the `sweep` binary.

use crate::cache::DocMeta;
use crate::policy::key::KeySpec;
use crate::policy::RemovalPolicy;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use webcache_trace::{Timestamp, UrlId};

/// Rank triple plus URL id: a total order over cached documents.
type Entry = ((i64, i64, i64), UrlId);

/// Current rank of each resident URL, stored as a dense slab indexed by
/// the interned `UrlId` — the policy-side counterpart of the cache's
/// `SlabStore`. Rank lookup happens on every access of a rank-sensitive
/// policy, so it sits squarely on the sweep hot path; a slab makes it one
/// bounds check instead of a hash-and-probe.
#[derive(Debug, Clone, Default)]
struct RankSlab {
    slots: Vec<Option<(i64, i64, i64)>>,
}

impl RankSlab {
    fn get(&self, url: UrlId) -> Option<(i64, i64, i64)> {
        *self.slots.get(url.0 as usize)?
    }

    fn insert(&mut self, url: UrlId, rank: (i64, i64, i64)) -> Option<(i64, i64, i64)> {
        let i = url.0 as usize;
        if i >= self.slots.len() {
            self.slots.resize(i + 1, None);
        }
        self.slots[i].replace(rank)
    }

    fn remove(&mut self, url: UrlId) -> Option<(i64, i64, i64)> {
        self.slots.get_mut(url.0 as usize)?.take()
    }

    /// All live `(rank, url)` entries, in slab (not rank) order.
    fn entries(&self) -> impl Iterator<Item = Entry> + '_ {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| slot.map(|rank| (rank, UrlId(i as u32))))
    }
}

/// Bucket split threshold for [`PositionIndex`]: a bucket reaching this
/// size is halved. Buckets therefore hold ~64–256 entries, giving O(√n)
/// scan cost for position queries at the resident-set sizes the paper's
/// workloads produce.
const BUCKET_SPLIT: usize = 256;

/// Order-statistic side index: the same entries as `SortedPolicy::order`,
/// held as a sorted list of sorted buckets (sqrt-decomposition). A
/// position query walks whole buckets until the target's bucket, then
/// binary-searches inside it — O(√n) instead of the O(n)
/// `order.range(..).count()` the `BTreeSet` forces (std's B-tree exposes
/// no subtree counts). Maintained only when position tracking is enabled,
/// since insert/remove in a bucket are O(bucket) memmoves the plain
/// eviction path shouldn't pay.
#[derive(Debug, Clone, Default)]
struct PositionIndex {
    buckets: Vec<Vec<Entry>>,
}

impl PositionIndex {
    /// Build from entries already in ascending order.
    fn from_sorted(entries: impl Iterator<Item = Entry>) -> PositionIndex {
        let mut buckets = Vec::new();
        let mut cur: Vec<Entry> = Vec::with_capacity(BUCKET_SPLIT / 2);
        for e in entries {
            cur.push(e);
            if cur.len() >= BUCKET_SPLIT / 2 {
                buckets.push(std::mem::take(&mut cur));
            }
        }
        if !cur.is_empty() {
            buckets.push(cur);
        }
        PositionIndex { buckets }
    }

    /// Index of the bucket that does (or should) contain `e`.
    fn bucket_for(&self, e: &Entry) -> usize {
        let i = self
            .buckets
            .partition_point(|b| b.last().is_some_and(|last| last < e));
        i.min(self.buckets.len().saturating_sub(1))
    }

    fn insert(&mut self, e: Entry) {
        if self.buckets.is_empty() {
            self.buckets.push(vec![e]);
            return;
        }
        let bi = self.bucket_for(&e);
        let b = &mut self.buckets[bi];
        let pos = b.partition_point(|x| x < &e);
        b.insert(pos, e);
        if b.len() >= BUCKET_SPLIT {
            let tail = b.split_off(b.len() / 2);
            self.buckets.insert(bi + 1, tail);
        }
    }

    fn remove(&mut self, e: &Entry) {
        if self.buckets.is_empty() {
            return;
        }
        let bi = self.bucket_for(e);
        if let Ok(pos) = self.buckets[bi].binary_search(e) {
            self.buckets[bi].remove(pos);
            if self.buckets[bi].is_empty() {
                self.buckets.remove(bi);
            }
        }
    }

    /// Number of entries strictly before `e` in the total order.
    fn position(&self, e: &Entry) -> usize {
        let mut acc = 0;
        for b in &self.buckets {
            if b.last().is_some_and(|last| last < e) {
                acc += b.len();
            } else {
                return acc + b.partition_point(|x| x < e);
            }
        }
        acc
    }
}

/// A removal policy defined by a [`KeySpec`] (primary, secondary, tertiary
/// key), per the paper's taxonomy. 36 combinations of Table 1 keys —
/// including FIFO, LRU, LFU and Hyper-G — are instances of this one type.
#[derive(Debug, Clone)]
pub struct SortedPolicy {
    spec: KeySpec,
    /// Min-heap over `(rank, url)` with lazy deletion: entries whose rank
    /// disagrees with `ranks` are stale and get popped during
    /// [`victim`](RemovalPolicy::victim). `ranks` is the ground truth for
    /// residency and rank; the heap only orders it.
    heap: BinaryHeap<Reverse<Entry>>,
    ranks: RankSlab,
    /// Live entry count (the heap length includes stale entries).
    live: usize,
    positions: Option<PositionIndex>,
    name_override: Option<&'static str>,
}

impl SortedPolicy {
    /// Create a policy sorting by `spec`.
    pub fn new(spec: KeySpec) -> SortedPolicy {
        SortedPolicy {
            spec,
            heap: BinaryHeap::new(),
            ranks: RankSlab::default(),
            live: 0,
            positions: None,
            name_override: None,
        }
    }

    /// Create with a literature name (used by [`crate::policy::named`]).
    pub fn named(spec: KeySpec, name: &'static str) -> SortedPolicy {
        SortedPolicy {
            name_override: Some(name),
            ..SortedPolicy::new(spec)
        }
    }

    /// The key specification this policy sorts by.
    pub fn spec(&self) -> KeySpec {
        self.spec
    }

    /// The documents in removal order (head first). Exposed for tests and
    /// for reproducing Table 2's sorted lists.
    pub fn sorted_urls(&self) -> Vec<UrlId> {
        let mut live: Vec<Entry> = self.ranks.entries().collect();
        live.sort_unstable();
        live.into_iter().map(|(_, url)| url).collect()
    }

    fn upsert(&mut self, meta: &DocMeta) {
        let rank = self.spec.rank(meta);
        match self.ranks.insert(meta.url, rank) {
            // Rank unchanged: the heap entry is still live, nothing to do.
            Some(old) if old == rank => return,
            Some(old) => {
                // Old entry goes stale in the heap; victim() will skip it.
                if let Some(idx) = &mut self.positions {
                    idx.remove(&(old, meta.url));
                }
            }
            None => self.live += 1,
        }
        self.heap.push(Reverse((rank, meta.url)));
        if let Some(idx) = &mut self.positions {
            idx.insert((rank, meta.url));
        }
    }
}

impl RemovalPolicy for SortedPolicy {
    fn name(&self) -> String {
        match self.name_override {
            Some(n) => n.to_string(),
            None => self.spec.name(),
        }
    }

    fn on_insert(&mut self, meta: &DocMeta) {
        self.upsert(meta);
    }

    fn on_access(&mut self, meta: &DocMeta) {
        // Only re-rank when an access can change the rank.
        if self.spec.access_sensitive() {
            self.upsert(meta);
        }
    }

    fn on_remove(&mut self, url: UrlId) {
        if let Some(rank) = self.ranks.remove(url) {
            // The heap entry goes stale; victim() pops it lazily.
            self.live -= 1;
            if let Some(idx) = &mut self.positions {
                idx.remove(&(rank, url));
            }
        }
    }

    fn victim(&mut self, _now: Timestamp, _incoming_size: u64) -> Option<UrlId> {
        // Pop stale entries (removed documents or superseded ranks) until
        // the head agrees with the slab — that head is the smallest live
        // `(rank, url)`, exactly what a fully-sorted list would remove.
        while let Some(&Reverse((rank, url))) = self.heap.peek() {
            if self.ranks.get(url) == Some(rank) {
                return Some(url);
            }
            self.heap.pop();
        }
        None
    }

    fn len(&self) -> usize {
        self.live
    }

    fn removal_position(&self, url: UrlId) -> Option<usize> {
        let rank = self.ranks.get(url)?;
        match &self.positions {
            Some(idx) => Some(idx.position(&(rank, url))),
            // Untracked fallback: a linear scan of the live entries. Fine
            // for one-off test queries; per-request callers must call
            // `enable_position_tracking` first.
            None => Some(self.ranks.entries().filter(|e| *e < (rank, url)).count()),
        }
    }

    fn enable_position_tracking(&mut self) {
        if self.positions.is_none() {
            let mut live: Vec<Entry> = self.ranks.entries().collect();
            live.sort_unstable();
            self.positions = Some(PositionIndex::from_sorted(live.into_iter()));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::key::Key;
    use webcache_trace::DocType;

    fn meta(url: u32, size: u64, etime: u64, atime: u64, nrefs: u64) -> DocMeta {
        DocMeta {
            url: UrlId(url),
            size,
            doc_type: DocType::Text,
            entry_time: etime,
            last_access: atime,
            nrefs,
            expires: None,
            refetch_latency_ms: 0,
            type_priority: 0,
            last_modified: None,
        }
    }

    #[test]
    fn lru_order_updates_on_access() {
        let mut p = SortedPolicy::new(KeySpec::primary(Key::AccessTime));
        p.on_insert(&meta(1, 5, 0, 0, 1));
        p.on_insert(&meta(2, 5, 1, 1, 1));
        assert_eq!(p.victim(10, 0), Some(UrlId(1)));
        // Touch 1 at t=5: now 2 is least recently used.
        p.on_access(&meta(1, 5, 0, 5, 2));
        assert_eq!(p.victim(10, 0), Some(UrlId(2)));
        assert_eq!(p.sorted_urls(), vec![UrlId(2), UrlId(1)]);
    }

    #[test]
    fn fifo_ignores_accesses() {
        let mut p = SortedPolicy::new(KeySpec::primary(Key::EntryTime));
        p.on_insert(&meta(1, 5, 0, 0, 1));
        p.on_insert(&meta(2, 5, 1, 1, 1));
        p.on_access(&meta(1, 5, 0, 99, 2));
        assert_eq!(p.victim(100, 0), Some(UrlId(1)));
    }

    #[test]
    fn size_primary_with_lru_secondary_breaks_ties() {
        let mut p = SortedPolicy::new(KeySpec::pair(Key::Size, Key::AccessTime));
        p.on_insert(&meta(1, 100, 0, 50, 1)); // same size, fresher
        p.on_insert(&meta(2, 100, 0, 10, 1)); // same size, staler
        p.on_insert(&meta(3, 10, 0, 0, 1)); // small
        assert_eq!(p.sorted_urls(), vec![UrlId(2), UrlId(1), UrlId(3)]);
    }

    #[test]
    fn remove_keeps_structures_consistent() {
        let mut p = SortedPolicy::new(KeySpec::primary(Key::Size));
        p.on_insert(&meta(1, 100, 0, 0, 1));
        p.on_insert(&meta(2, 50, 0, 0, 1));
        p.on_remove(UrlId(1));
        assert_eq!(p.len(), 1);
        assert_eq!(p.victim(0, 0), Some(UrlId(2)));
        p.on_remove(UrlId(2));
        assert_eq!(p.victim(0, 0), None);
        assert!(p.is_empty());
        // Removing an unknown URL is a no-op.
        p.on_remove(UrlId(99));
        assert_eq!(p.len(), 0);
    }

    #[test]
    fn reinsert_replaces_rank() {
        let mut p = SortedPolicy::new(KeySpec::primary(Key::Size));
        p.on_insert(&meta(1, 100, 0, 0, 1));
        // Same URL re-inserted with a different size must not duplicate.
        p.on_insert(&meta(1, 10, 1, 1, 1));
        assert_eq!(p.len(), 1);
        p.on_insert(&meta(2, 50, 0, 0, 1));
        assert_eq!(p.victim(0, 0), Some(UrlId(2)));
    }

    #[test]
    fn random_order_is_stable_and_salt_dependent() {
        let mk = |salt| {
            let mut p = SortedPolicy::new(KeySpec::primary(Key::Random).with_salt(salt));
            for i in 0..20 {
                p.on_insert(&meta(i, 5, 0, 0, 1));
            }
            p.sorted_urls()
        };
        assert_eq!(mk(1), mk(1));
        assert_ne!(mk(1), mk(2));
    }

    #[test]
    fn tracked_positions_match_linear_scan_under_churn() {
        // Enough entries to force several PositionIndex bucket splits,
        // with accesses (re-ranks) and removals mixed in; the O(√n) index
        // must agree with the untracked O(n) walk at every URL.
        let mut tracked = SortedPolicy::new(KeySpec::pair(Key::Size, Key::AccessTime));
        let mut plain = SortedPolicy::new(KeySpec::pair(Key::Size, Key::AccessTime));
        tracked.enable_position_tracking();
        for i in 0..600u32 {
            let m = meta(i, (i as u64 * 37) % 500 + 1, i as u64, i as u64, 1);
            tracked.on_insert(&m);
            plain.on_insert(&m);
        }
        for i in (0..600u32).step_by(3) {
            let m = meta(i, (i as u64 * 37) % 500 + 1, i as u64, 1_000 + i as u64, 2);
            tracked.on_access(&m);
            plain.on_access(&m);
        }
        for i in (0..600).step_by(7) {
            tracked.on_remove(UrlId(i));
            plain.on_remove(UrlId(i));
        }
        assert_eq!(tracked.len(), plain.len());
        for i in 0..600 {
            assert_eq!(
                tracked.removal_position(UrlId(i)),
                plain.removal_position(UrlId(i)),
                "position diverges at url {i}"
            );
        }
    }

    #[test]
    fn enabling_tracking_midstream_snapshots_existing_entries() {
        let mut p = SortedPolicy::new(KeySpec::primary(Key::Size));
        for i in 0..50u32 {
            p.on_insert(&meta(i, 1 + i as u64, 0, 0, 1));
        }
        p.enable_position_tracking();
        // SIZE removes largest-first, so the biggest document (url 49)
        // heads the order.
        for i in 0..50 {
            assert_eq!(p.removal_position(UrlId(i)), Some(49 - i as usize));
        }
    }

    #[test]
    fn nref_promotes_on_access() {
        let mut p = SortedPolicy::new(KeySpec::pair(Key::NRef, Key::EntryTime));
        p.on_insert(&meta(1, 5, 0, 0, 1));
        p.on_insert(&meta(2, 5, 1, 1, 1));
        // 1 gets referenced twice more; 2 stays at 1 ref.
        p.on_access(&meta(1, 5, 0, 2, 2));
        p.on_access(&meta(1, 5, 0, 3, 3));
        assert_eq!(p.victim(5, 0), Some(UrlId(2)));
        // Tie on NREF broken by ETIME (oldest first).
        p.on_access(&meta(2, 5, 1, 4, 2));
        p.on_access(&meta(2, 5, 1, 5, 3));
        assert_eq!(p.victim(6, 0), Some(UrlId(1)));
    }
}
