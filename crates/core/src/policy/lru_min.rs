//! The exact LRU-MIN policy (Abrams, Standridge, Abdulla, Williams & Fox,
//! *Caching proxies: limitations and potentials*, WWW4 1995).
//!
//! For an incoming document of size `S`:
//!
//! 1. If any cached documents have size ≥ `S`, remove the least recently
//!    used among them.
//! 2. Otherwise consider documents of size ≥ `S/2`; if any, remove the LRU
//!    among them. If not, repeat with `S/4`, `S/8`, … until a candidate
//!    exists.
//!
//! The paper (section 1.2) is careful to note that `⌊log₂ SIZE⌋ + ATIME`
//! is *not* identical to LRU-MIN, because LRU-MIN's thresholds are derived
//! from the **incoming** document's size. This module implements the real
//! algorithm, so the repository can compare both.
//!
//! Implementation: documents are bucketed by `⌊log₂ size⌋`, each bucket an
//! ATIME-ordered set. A victim query scans, for each threshold `S/2^k`, the
//! partially-qualifying bucket plus the minima of all fully-qualifying
//! larger buckets — `O(log(max_size))` bucket probes per step.

use crate::cache::DocMeta;
use crate::policy::RemovalPolicy;
use rustc_hash::FxHashMap;
use std::collections::BTreeSet;
use webcache_trace::{Timestamp, UrlId};

const BUCKETS: usize = 64;

/// The exact LRU-MIN removal policy.
#[derive(Debug, Default, Clone)]
pub struct LruMin {
    /// `buckets[b]` holds `(atime, url)` for docs with `⌊log₂ size⌋ == b`.
    buckets: Vec<BTreeSet<(Timestamp, UrlId)>>,
    /// Per-document `(atime, size)` so updates can locate bucket entries.
    docs: FxHashMap<UrlId, (Timestamp, u64)>,
}

impl LruMin {
    /// Create an empty LRU-MIN policy.
    pub fn new() -> LruMin {
        LruMin {
            buckets: vec![BTreeSet::new(); BUCKETS],
            docs: FxHashMap::default(),
        }
    }

    fn bucket_of(size: u64) -> usize {
        size.max(1).ilog2() as usize
    }

    /// LRU document with size ≥ `threshold`, if any.
    fn lru_at_least(&self, threshold: u64) -> Option<UrlId> {
        let start = Self::bucket_of(threshold.max(1));
        let mut best: Option<(Timestamp, UrlId)> = None;
        // Bucket `start` only partially qualifies: scan in ATIME order for
        // the first member actually ≥ threshold.
        for &(atime, url) in &self.buckets[start] {
            if let Some(&(_, size)) = self.docs.get(&url) {
                if size >= threshold {
                    best = Some((atime, url));
                    break;
                }
            }
        }
        // Larger buckets qualify entirely: their first element is their LRU.
        for bucket in &self.buckets[start + 1..] {
            if let Some(&(atime, url)) = bucket.first() {
                if best.is_none_or(|(t, _)| atime < t) {
                    best = Some((atime, url));
                }
            }
        }
        best.map(|(_, url)| url)
    }
}

impl RemovalPolicy for LruMin {
    fn name(&self) -> String {
        "LRU-MIN".to_string()
    }

    fn on_insert(&mut self, meta: &DocMeta) {
        if let Some((old_atime, old_size)) =
            self.docs.insert(meta.url, (meta.last_access, meta.size))
        {
            self.buckets[Self::bucket_of(old_size)].remove(&(old_atime, meta.url));
        }
        self.buckets[Self::bucket_of(meta.size)].insert((meta.last_access, meta.url));
    }

    fn on_access(&mut self, meta: &DocMeta) {
        self.on_insert(meta);
    }

    fn on_remove(&mut self, url: UrlId) {
        if let Some((atime, size)) = self.docs.remove(&url) {
            self.buckets[Self::bucket_of(size)].remove(&(atime, url));
        }
    }

    fn victim(&mut self, _now: Timestamp, incoming_size: u64) -> Option<UrlId> {
        if self.docs.is_empty() {
            return None;
        }
        let mut threshold = incoming_size.max(1);
        loop {
            if let Some(url) = self.lru_at_least(threshold) {
                return Some(url);
            }
            if threshold == 1 {
                // Nothing qualifies even at 1 byte — impossible while a
                // document is resident, but stay total.
                return self
                    .buckets
                    .iter()
                    .filter_map(|b| b.first())
                    .min()
                    .map(|&(_, url)| url);
            }
            threshold /= 2;
        }
    }

    fn len(&self) -> usize {
        self.docs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use webcache_trace::DocType;

    fn meta(url: u32, size: u64, atime: u64) -> DocMeta {
        DocMeta {
            url: UrlId(url),
            size,
            doc_type: DocType::Text,
            entry_time: atime,
            last_access: atime,
            nrefs: 1,
            expires: None,
            refetch_latency_ms: 0,
            type_priority: 0,
            last_modified: None,
        }
    }

    #[test]
    fn prefers_lru_among_docs_at_least_incoming_size() {
        let mut p = LruMin::new();
        p.on_insert(&meta(1, 100, 5)); // big, fresher
        p.on_insert(&meta(2, 100, 1)); // big, stalest
        p.on_insert(&meta(3, 10, 0)); // small but stalest overall
                                      // Incoming 80 bytes: only the 100-byte docs qualify at the first
                                      // threshold; LRU among them is url 2 — NOT the globally stale url 3.
        assert_eq!(p.victim(10, 80), Some(UrlId(2)));
    }

    #[test]
    fn halves_threshold_when_no_doc_is_large_enough() {
        let mut p = LruMin::new();
        p.on_insert(&meta(1, 30, 5));
        p.on_insert(&meta(2, 40, 1));
        // Incoming 100: nothing ≥100 or ≥50; at ≥25 both qualify, LRU is 2.
        assert_eq!(p.victim(10, 100), Some(UrlId(2)));
    }

    #[test]
    fn partially_qualifying_bucket_is_filtered_by_size() {
        let mut p = LruMin::new();
        // Both in bucket ⌊log₂⌋ = 6 (64..127), but only one is ≥ 100.
        p.on_insert(&meta(1, 70, 0)); // stalest, too small
        p.on_insert(&meta(2, 120, 5)); // qualifies
        assert_eq!(p.victim(10, 100), Some(UrlId(2)));
    }

    #[test]
    fn differs_from_log2size_lru_on_incoming_size() {
        // The paper's point: ⌊log₂ SIZE⌋+ATIME always removes from the
        // largest bucket; LRU-MIN may remove an equal-sized doc instead.
        use crate::policy::named::log2size_lru;
        let mut lm = LruMin::new();
        let mut lg = log2size_lru();
        for m in [meta(1, 4000, 0), meta(2, 1000, 1)] {
            lm.on_insert(&m);
            lg.on_insert(&m);
        }
        // Incoming 1000-byte doc: LRU-MIN finds url 1 and url 2 both ≥1000
        // and evicts the LRU (url 1 at atime 0) — same as log2 here; but
        // with url 1 freshly touched, LRU-MIN picks url 2 while the log2
        // policy still insists on the largest bucket (url 1).
        lm.on_access(&meta(1, 4000, 50));
        lg.on_access(&meta(1, 4000, 50));
        assert_eq!(lm.victim(60, 1000), Some(UrlId(2)));
        assert_eq!(lg.victim(60, 1000), Some(UrlId(1)));
    }

    #[test]
    fn empty_returns_none_and_removal_updates_state() {
        let mut p = LruMin::new();
        assert_eq!(p.victim(0, 10), None);
        p.on_insert(&meta(1, 10, 0));
        p.on_remove(UrlId(1));
        assert_eq!(p.victim(0, 10), None);
        assert!(p.is_empty());
    }

    #[test]
    fn access_reorders_within_bucket() {
        let mut p = LruMin::new();
        p.on_insert(&meta(1, 100, 0));
        p.on_insert(&meta(2, 100, 1));
        p.on_access(&meta(1, 100, 9));
        assert_eq!(p.victim(10, 100), Some(UrlId(2)));
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn huge_sizes_do_not_overflow_buckets() {
        let mut p = LruMin::new();
        p.on_insert(&meta(1, u64::MAX / 2, 0));
        assert_eq!(p.victim(1, u64::MAX / 2), Some(UrlId(1)));
    }
}
