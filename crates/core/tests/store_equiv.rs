//! Property: the dense [`SlabStore`] and the reference [`HashStore`] are
//! observably identical document stores. A cache backed by either must
//! produce the same outcome — hit, miss, modified-miss, too-big — with the
//! same eviction lists, for any request sequence, under both an
//! access-insensitive (SIZE) and an access-sensitive (LRU) policy.

use proptest::prelude::*;
use webcache_core::cache::{Cache, HashStore, SlabStore};
use webcache_core::policy::{Key, KeySpec, SortedPolicy};
use webcache_trace::{RawRequest, Trace};

/// Build a trace from (url, size) pairs, one request per second so
/// sequences span day boundaries when long enough.
fn trace_of(reqs: &[(u32, u64)]) -> Trace {
    let raws: Vec<RawRequest> = reqs
        .iter()
        .enumerate()
        .map(|(i, &(url, size))| RawRequest {
            time: i as u64 * 1_733,
            client: "c".into(),
            url: format!("http://server/doc{url}"),
            status: 200,
            size,
            last_modified: None,
        })
        .collect();
    Trace::from_raw("prop", &raws)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn slab_and_hash_stores_agree(
        reqs in prop::collection::vec((0u32..24, 1u64..3_000), 1..300),
        capacity in 2_000u64..20_000,
    ) {
        let trace = trace_of(&reqs);
        for key in [Key::Size, Key::AccessTime] {
            let spec = KeySpec::pair(key, Key::EntryTime);
            let mut slab: Cache<SlabStore> =
                Cache::new_in(capacity, Box::new(SortedPolicy::new(spec)));
            let mut hash: Cache<HashStore> =
                Cache::new_in(capacity, Box::new(SortedPolicy::new(spec)));
            for r in &trace.requests {
                let a = slab.request(r);
                let b = hash.request(r);
                prop_assert_eq!(&a, &b);
            }
            prop_assert_eq!(slab.counts(), hash.counts());
            prop_assert_eq!(slab.len(), hash.len());
            slab.check_invariants();
            hash.check_invariants();
        }
    }
}
