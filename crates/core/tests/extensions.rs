//! Tests for the section 5 "open problems" extensions implemented beyond
//! the paper: the document-type, refetch-latency and expiry sorting keys,
//! and their interaction with the cache decorator.

use webcache_core::cache::{Cache, DocMeta};
use webcache_core::policy::{Key, KeySpec, SortedPolicy};
use webcache_trace::{ClientId, DocType, Request, ServerId, UrlId};

fn req(time: u64, url: u32, size: u64, doc_type: DocType) -> Request {
    Request {
        time,
        client: ClientId(0),
        server: ServerId(url % 4),
        url: UrlId(url),
        size,
        doc_type,
        last_modified: None,
    }
}

/// The DOCTYPE key with the default priority evicts continuous media
/// before text, so text stays cached (the low-text-latency reading of the
/// paper's open problem 1).
#[test]
fn doctype_key_sacrifices_media_to_keep_text() {
    let mut cache = Cache::new(
        10_000,
        Box::new(SortedPolicy::new(KeySpec::pair(
            Key::DocTypePriority,
            Key::AccessTime,
        ))),
    );
    cache.request(&req(0, 1, 4_000, DocType::Text));
    cache.request(&req(1, 2, 4_000, DocType::Audio));
    cache.request(&req(2, 3, 1_000, DocType::Graphics));
    // Needs 3 kB: audio (priority 0) goes first despite being as big as
    // the text document and more recently used.
    cache.request(&req(3, 4, 4_000, DocType::Text));
    assert!(!cache.contains(UrlId(2)), "audio should be evicted first");
    assert!(cache.contains(UrlId(1)), "text survives");
    cache.check_invariants();
}

/// The LATENCY key evicts cheap-to-refetch documents first: with a
/// decorator modelling a slow transatlantic server, its documents are
/// retained.
#[test]
fn latency_key_prefers_keeping_expensive_documents() {
    fn latency_model(r: &Request, m: &mut DocMeta) {
        // Server 0 is "transatlantic": 800 ms refetch; others 20 ms.
        m.refetch_latency_ms = if r.server.0 == 0 { 800 } else { 20 };
    }
    let mut cache = Cache::new(
        9_000,
        Box::new(SortedPolicy::new(KeySpec::pair(
            Key::Latency,
            Key::AccessTime,
        ))),
    )
    .with_decorator(latency_model);
    cache.request(&req(0, 0, 4_000, DocType::Text)); // server 0: slow
    cache.request(&req(1, 1, 4_000, DocType::Text)); // server 1: fast
    cache.request(&req(2, 2, 4_000, DocType::Text)); // server 2: fast, evicts a fast one
    assert!(
        cache.contains(UrlId(0)),
        "the slow server's document must be retained"
    );
    assert!(!cache.contains(UrlId(1)));
    cache.check_invariants();
}

/// The EXPIRY key (Harvest-style, open problem 4): expired and
/// soon-to-expire documents leave first; documents without expiry leave
/// last.
#[test]
fn expiry_key_removes_expired_documents_first() {
    fn ttl(r: &Request, m: &mut DocMeta) {
        // Even URLs get a short TTL, odd URLs never expire.
        if r.url.0.is_multiple_of(2) {
            m.expires = Some(m.entry_time + 10);
        }
    }
    let mut cache = Cache::new(
        9_000,
        Box::new(SortedPolicy::new(KeySpec::pair(
            Key::Expiry,
            Key::AccessTime,
        ))),
    )
    .with_decorator(ttl);
    cache.request(&req(0, 2, 4_000, DocType::Text)); // expires t=10
    cache.request(&req(1, 3, 4_000, DocType::Text)); // never expires
    cache.request(&req(100, 4, 4_000, DocType::Text)); // evict: the expired doc
    assert!(!cache.contains(UrlId(2)), "expired document leaves first");
    assert!(cache.contains(UrlId(3)));
    // Next eviction: url 4 (expires t=110) leaves before the no-expiry doc.
    cache.request(&req(200, 5, 4_000, DocType::Cgi));
    assert!(!cache.contains(UrlId(4)));
    assert!(cache.contains(UrlId(3)), "no-expiry document is last out");
}

/// Periodic removal interacts correctly with multi-day idle gaps: a
/// Pitkow/Recker cache crossing several day boundaries at once purges to
/// the comfort level exactly once per crossing without double-counting.
#[test]
fn periodic_removal_across_idle_days() {
    use webcache_core::policy::PitkowRecker;
    let day = webcache_trace::SECONDS_PER_DAY;
    let mut cache = Cache::new(100, Box::new(PitkowRecker::new(Some(0.5), 0)));
    for i in 0..10 {
        cache.request(&req(i, i as u32, 10, DocType::Text));
    }
    assert_eq!(cache.used(), 100);
    // Jump four days ahead (e.g. a long weekend): the purge brings the
    // cache to the comfort level, not to zero.
    cache.advance_time(4 * day + 1);
    assert_eq!(cache.used(), 50);
    let purged_once = cache.stats().periodic_evictions;
    // Crossing into the same day again must not purge further.
    cache.advance_time(4 * day + 2);
    assert_eq!(cache.stats().periodic_evictions, purged_once);
    cache.check_invariants();
}

/// The GreedyDual-Size extension outperforms plain SIZE on weighted hit
/// rate for a mixed workload while staying close on hit rate — the
/// motivation for its inclusion.
#[test]
fn greedy_dual_size_balances_hr_and_whr() {
    use webcache_core::policy::{named, GreedyDualSize};
    use webcache_core::sim::simulate_policy;
    use webcache_trace::RawRequest;

    // A workload mixing a hot big document with many small ones.
    let mut raws = Vec::new();
    let mut t = 0u64;
    for round in 0..200u64 {
        raws.push(RawRequest {
            time: t,
            client: "c".into(),
            url: "http://s/big.mpg".into(),
            status: 200,
            size: 50_000,
            last_modified: None,
        });
        t += 1;
        for i in 0..10u64 {
            raws.push(RawRequest {
                time: t,
                client: "c".into(),
                url: format!("http://s/p{}.html", (round * 7 + i) % 60),
                status: 200,
                size: 2_000,
                last_modified: None,
            });
            t += 1;
        }
    }
    let trace = webcache_trace::Trace::from_raw("mix", &raws);
    let cap = 80_000; // holds the big doc plus ~15 small ones, not all 60
    let size = simulate_policy(&trace, cap, Box::new(named::size()));
    let gds = simulate_policy(&trace, cap, Box::new(GreedyDualSize::new()));
    let (s, g) = (
        size.stream("cache").unwrap().total,
        gds.stream("cache").unwrap().total,
    );
    // SIZE always evicts the hot big doc: poor WHR. GDS keeps it once its
    // value accrues.
    assert!(
        g.weighted_hit_rate() > s.weighted_hit_rate(),
        "GDS WHR {} should beat SIZE WHR {}",
        g.weighted_hit_rate(),
        s.weighted_hit_rate()
    );
}
