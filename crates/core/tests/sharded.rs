//! Correctness bridge between the sharded runtime and the simulator.
//!
//! Two guarantees (ISSUE 5 / DESIGN.md D12):
//!
//! * a 1-shard [`ShardedCache`] is **bit-identical** to the single-cache
//!   simulator (`simulate_policy`) — same outcomes, same counters;
//! * an N-shard cache at the same *total* capacity tracks the simulator's
//!   hit rate within a documented tolerance on a Zipf-like workload
//!   (eviction pressure is per shard, so exact equality is not expected;
//!   see the module docs of `webcache_core::cache::sharded`).

use webcache_core::cache::ShardedCache;
use webcache_core::policy::named;
use webcache_core::sim::simulate_policy;
use webcache_trace::{RawRequest, Trace};

/// Absolute hit-rate tolerance for the N-shard vs single-cache
/// comparison at a capacity of ~10% of the working set. Documented in
/// DESIGN.md D12: per-shard eviction pressure makes a hot shard evict
/// while a cold one has slack, so rates deviate by a few points.
const HIT_RATE_TOLERANCE: f64 = 0.05;

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A deterministic Zipf-ish trace: rank sampled as `u ^ 2` over the
/// universe (quadratic skew approximates the paper's concentration of
/// references), sizes spread over two orders of magnitude by rank.
fn zipfish_trace(requests: u64, universe: u64, seed: u64) -> Trace {
    let raws: Vec<RawRequest> = (0..requests)
        .map(|i| {
            let u = splitmix64(seed ^ i) as f64 / u64::MAX as f64;
            let rank = ((u * u) * universe as f64) as u64;
            let size = 200 + (splitmix64(rank) % 64) * ((rank % 97) + 1);
            RawRequest {
                time: i * 13,
                client: "c".into(),
                url: format!("http://s{}.test/d{rank}.html", rank % 17),
                status: 200,
                size,
                last_modified: None,
            }
        })
        .collect();
    Trace::from_raw("zipfish", &raws)
}

#[test]
fn one_shard_replay_matches_simulator_bit_identically() {
    let trace = zipfish_trace(20_000, 2_000, 7);
    let total: u64 = trace.requests.iter().map(|r| r.size).sum();
    let capacity = total / 10;

    let sim = simulate_policy(&trace, capacity, Box::new(named::lru()));
    let sharded: ShardedCache = ShardedCache::new(capacity, 1, || Box::new(named::lru()));
    for r in &trace.requests {
        sharded.request(r);
    }
    let sim_total = sim.stream("cache").expect("cache stream").total;
    assert_eq!(
        sim_total,
        sharded.counts(),
        "1-shard ShardedCache must be bit-identical to the simulator"
    );
}

#[test]
fn n_shard_hit_rate_tracks_simulator_within_tolerance() {
    let trace = zipfish_trace(40_000, 2_000, 11);
    let total: u64 = trace.requests.iter().map(|r| r.size).sum();
    let capacity = total / 10;

    let sim = simulate_policy(&trace, capacity, Box::new(named::lru()));
    let sim_hr = sim.stream("cache").expect("cache stream").total.hit_rate();

    let shards = 8;
    let sharded: ShardedCache = ShardedCache::new(capacity, shards, || Box::new(named::lru()));
    for r in &trace.requests {
        sharded.request(r);
    }
    sharded.check_invariants();
    let sharded_hr = sharded.counts().hit_rate();

    assert!(
        (sim_hr - sharded_hr).abs() <= HIT_RATE_TOLERANCE,
        "hit rate deviated beyond tolerance: simulator {sim_hr:.4} vs {shards}-shard \
         {sharded_hr:.4} (|Δ| > {HIT_RATE_TOLERANCE})"
    );
    // Both configurations see identical demand.
    assert_eq!(sharded.counts().requests, trace.len() as u64);
    assert_eq!(
        sharded.counts().bytes_requested,
        sim.stream("cache").unwrap().total.bytes_requested
    );
}
