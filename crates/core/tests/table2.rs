//! Exact reproduction of Table 2 of the paper: the 42.5 kB worked example.
//!
//! The paper traces eight documents A-H through a 42.5 kB cache, then
//! references a new 1.5 kB document I just after time 15 and shows, for
//! several (primary, secondary) key combinations, both the sorted removal
//! list and which documents are removed. These tests replay that trace and
//! assert the exact sorted lists and removal sets.
//!
//! Sizes are the table's kB values at 1 kB = 1024 bytes, rounded down to
//! whole bytes so that ⌊log₂ SIZE⌋ reproduces the table's middle rows
//! (A,B,G → 10; C,D,E → 13; H → 12; F → 8).

use webcache_core::cache::{Cache, DocMeta, Outcome};
use webcache_core::policy::{named, Key, KeySpec, RemovalPolicy, SortedPolicy};
use webcache_trace::{ClientId, DocType, Request, ServerId, UrlId};

const KB: f64 = 1024.0;

/// (name, url id, size bytes). Table 2 sizes in kB: A 1.9, B 1.2, C 9,
/// D 15, E 8, F 0.3, G 1.9, H 5.2.
fn doc(name: char) -> (UrlId, u64) {
    let (id, kb) = match name {
        'A' => (0, 1.9),
        'B' => (1, 1.2),
        'C' => (2, 9.0),
        'D' => (3, 15.0),
        'E' => (4, 8.0),
        'F' => (5, 0.3),
        'G' => (6, 1.9),
        'H' => (7, 5.2),
        'I' => (8, 1.5),
        _ => panic!("unknown document {name}"),
    };
    (UrlId(id), (kb * KB) as u64)
}

fn name_of(url: UrlId) -> char {
    (b'A' + url.0 as u8) as char
}

/// The Table 2 reference schedule: (time, document).
const SCHEDULE: [(u64, char); 15] = [
    (1, 'A'),
    (2, 'B'),
    (3, 'C'),
    (4, 'B'),
    (5, 'B'),
    (6, 'A'),
    (7, 'D'),
    (8, 'E'),
    (9, 'C'),
    (10, 'D'),
    (11, 'F'),
    (12, 'G'),
    (13, 'A'),
    (14, 'D'),
    (15, 'H'),
];

fn request(time: u64, name: char) -> Request {
    let (url, size) = doc(name);
    Request {
        time,
        client: ClientId(0),
        server: ServerId(0),
        url,
        size,
        doc_type: DocType::Text,
        last_modified: None,
    }
}

/// Capacity of the example cache: 42.5 kB.
fn capacity() -> u64 {
    (42.5 * KB) as u64
}

/// Run the A-H schedule through a cache with the given policy, then
/// request I and return the evicted documents (by letter, in order).
fn removals_for(policy: Box<dyn RemovalPolicy>) -> Vec<char> {
    let mut cache = Cache::new(capacity(), policy);
    for &(t, name) in &SCHEDULE {
        cache.request(&request(t, name));
    }
    // "After time 15, the cache is 100% full" — within rounding, less than
    // one incoming document of free space.
    assert!(cache.capacity() - cache.used() < doc('I').1);
    assert_eq!(cache.len(), 8);
    match cache.request(&request(16, 'I')) {
        Outcome::Miss { evicted } => evicted.iter().map(|m| name_of(m.url)).collect(),
        other => panic!("expected a miss with evictions, got {other:?}"),
    }
}

/// Build the DocMeta states "at time 15+" directly from the trace and
/// return the policy's full sorted list (head = removed first).
fn sorted_list_for(spec: KeySpec) -> Vec<char> {
    let mut policy = SortedPolicy::new(spec);
    let mut metas: std::collections::HashMap<UrlId, DocMeta> = std::collections::HashMap::new();
    for &(t, name) in &SCHEDULE {
        let (url, size) = doc(name);
        let meta = metas
            .entry(url)
            .and_modify(|m| {
                m.last_access = t;
                m.nrefs += 1;
            })
            .or_insert(DocMeta {
                url,
                size,
                doc_type: DocType::Text,
                entry_time: t,
                last_access: t,
                nrefs: 1,
                expires: None,
                refetch_latency_ms: 0,
                type_priority: 0,
                last_modified: None,
            });
        let snapshot = *meta;
        if snapshot.nrefs == 1 {
            policy.on_insert(&snapshot);
        } else {
            policy.on_access(&snapshot);
        }
    }
    policy.sorted_urls().into_iter().map(name_of).collect()
}

/// The middle table of Table 2: key values of every document at time 15+.
#[test]
fn table2_key_values_at_time_15() {
    let mut cache = Cache::new(capacity(), Box::new(named::lru()));
    for &(t, name) in &SCHEDULE {
        cache.request(&request(t, name));
    }
    // (doc, log2size, etime, atime, nref) rows from the paper.
    let expected = [
        ('A', 10, 1, 13, 3),
        ('B', 10, 2, 5, 3),
        ('C', 13, 3, 9, 2),
        ('D', 13, 7, 14, 3),
        ('E', 13, 8, 8, 1),
        ('F', 8, 11, 11, 1),
        ('G', 10, 12, 12, 1),
        ('H', 12, 15, 15, 1),
    ];
    for (name, log2, etime, atime, nref) in expected {
        let (url, _) = doc(name);
        let m = cache.meta(url).unwrap_or_else(|| panic!("{name} missing"));
        assert_eq!(m.size.ilog2(), log2, "log2 size of {name}");
        assert_eq!(m.entry_time, etime, "ETIME of {name}");
        assert_eq!(m.last_access, atime, "ATIME of {name}");
        assert_eq!(m.nrefs, nref, "NREF of {name}");
    }
}

/// Bottom table, row "SIZE + ATIME": sorted list D C E H G A B F, only D
/// removed (15 kB frees far more than the 1.5 kB needed).
#[test]
fn table2_size_primary_removes_d() {
    let spec = KeySpec::pair(Key::Size, Key::AccessTime);
    assert_eq!(
        sorted_list_for(spec),
        vec!['D', 'C', 'E', 'H', 'G', 'A', 'B', 'F'],
        "A/G tie on size breaks by ATIME (G accessed earlier)"
    );
    assert_eq!(removals_for(Box::new(SortedPolicy::new(spec))), vec!['D']);
}

/// Bottom table, row "⌊log₂ SIZE⌋ + ATIME": sorted list E C D H B G A F,
/// only E removed.
#[test]
fn table2_log2size_primary_removes_e() {
    let spec = KeySpec::pair(Key::Log2Size, Key::AccessTime);
    assert_eq!(
        sorted_list_for(spec),
        vec!['E', 'C', 'D', 'H', 'B', 'G', 'A', 'F'],
        "bucket 13 = {{E,C,D}} by ATIME, then H, then bucket 10 by ATIME"
    );
    assert_eq!(removals_for(Box::new(SortedPolicy::new(spec))), vec!['E']);
}

/// Bottom table, row "ETIME" (FIFO): sorted list A B C D E F G H, only A
/// removed. "LRU ... will first remove document B ... then removes E".
#[test]
fn table2_fifo_removes_a_and_lru_removes_b_then_e() {
    let fifo_spec = KeySpec::primary(Key::EntryTime);
    assert_eq!(
        sorted_list_for(fifo_spec),
        vec!['A', 'B', 'C', 'D', 'E', 'F', 'G', 'H']
    );
    assert_eq!(removals_for(Box::new(named::fifo())), vec!['A']);

    // LRU row: B E C F G A D H; removing B (1.2 kB) is insufficient for
    // the 1.5 kB document, so E follows — the paper's worked narrative.
    let lru_spec = KeySpec::primary(Key::AccessTime);
    assert_eq!(
        sorted_list_for(lru_spec),
        vec!['B', 'E', 'C', 'F', 'G', 'A', 'D', 'H']
    );
    assert_eq!(removals_for(Box::new(named::lru())), vec!['B', 'E']);
}

/// Bottom table, row "NREF + ETIME": sorted list E F G H C A B D, only E
/// removed.
#[test]
fn table2_nref_primary_removes_e() {
    let spec = KeySpec::pair(Key::NRef, Key::EntryTime);
    assert_eq!(
        sorted_list_for(spec),
        vec!['E', 'F', 'G', 'H', 'C', 'A', 'B', 'D'],
        "NREF=1 docs by ETIME, then C (2 refs), then 3-ref docs by ETIME"
    );
    assert_eq!(removals_for(Box::new(SortedPolicy::new(spec))), vec!['E']);
}

/// Cross-check: every policy leaves the cache consistent and I resident.
#[test]
fn table2_post_removal_state_is_consistent() {
    for spec in [
        KeySpec::pair(Key::Size, Key::AccessTime),
        KeySpec::pair(Key::Log2Size, Key::AccessTime),
        KeySpec::primary(Key::EntryTime),
        KeySpec::primary(Key::AccessTime),
        KeySpec::pair(Key::NRef, Key::EntryTime),
    ] {
        let mut cache = Cache::new(capacity(), Box::new(SortedPolicy::new(spec)));
        for &(t, name) in &SCHEDULE {
            cache.request(&request(t, name));
        }
        cache.request(&request(16, 'I'));
        cache.check_invariants();
        assert!(cache.contains(doc('I').0), "{:?}: I not inserted", spec);
    }
}
