//! Daily time series and the paper's 7-day moving average.
//!
//! "There is great variation in daily hit rates … Therefore we apply a
//! 7-day moving average to the daily hit rates before plotting. … each
//! plotted point in a hit rate graph represents the average of the daily
//! hit rates for that day and the six preceding days. No point is plotted
//! for days zero to five." (section 3.2)
//!
//! Workload C adds a wrinkle: class met only four days a week, so idle
//! days produce no data point — "Every plotted point is the average of hit
//! rates for the previous seven *recorded* days, no matter what amount of
//! time has elapsed" (Fig. 5 caption). [`moving_average_recorded`]
//! implements that variant.

use serde::{Deserialize, Serialize};

/// A daily series; `None` marks days with no recorded data (idle days).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DailySeries {
    /// One optional observation per day, starting at day 0.
    pub values: Vec<Option<f64>>,
}

impl DailySeries {
    /// Wrap raw daily observations.
    pub fn new(values: Vec<Option<f64>>) -> DailySeries {
        DailySeries { values }
    }

    /// Build from plain values (every day recorded).
    pub fn dense(values: Vec<f64>) -> DailySeries {
        DailySeries {
            values: values.into_iter().map(Some).collect(),
        }
    }

    /// Number of days covered.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when the series has no days.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Mean over recorded days (the paper's "averaged over all days in the
    /// trace" summary numbers).
    pub fn mean(&self) -> f64 {
        let recorded: Vec<f64> = self.values.iter().copied().flatten().collect();
        if recorded.is_empty() {
            0.0
        } else {
            recorded.iter().sum::<f64>() / recorded.len() as f64
        }
    }

    /// Calendar 7-day moving average: point `d` is the mean of recorded
    /// values among days `d-6..=d`; `None` for days 0..=5 and for windows
    /// containing no recorded day. This is the transform applied to
    /// Figs. 3-12 and 15-20.
    pub fn moving_average(&self, window: usize) -> DailySeries {
        assert!(window >= 1);
        let mut out = Vec::with_capacity(self.values.len());
        for d in 0..self.values.len() {
            if d + 1 < window {
                out.push(None);
                continue;
            }
            let slice = &self.values[d + 1 - window..=d];
            let vals: Vec<f64> = slice.iter().copied().flatten().collect();
            out.push(if vals.is_empty() {
                None
            } else {
                Some(vals.iter().sum::<f64>() / vals.len() as f64)
            });
        }
        DailySeries { values: out }
    }

    /// Recorded-days moving average (Fig. 5 variant): point `d` is the
    /// mean of the last `window` *recorded* values up to and including day
    /// `d`; `None` until `window` recorded days exist or on unrecorded
    /// days.
    pub fn moving_average_recorded(&self, window: usize) -> DailySeries {
        assert!(window >= 1);
        let mut recent: std::collections::VecDeque<f64> = std::collections::VecDeque::new();
        let mut out = Vec::with_capacity(self.values.len());
        for v in &self.values {
            match v {
                Some(x) => {
                    recent.push_back(*x);
                    if recent.len() > window {
                        recent.pop_front();
                    }
                    out.push(if recent.len() == window {
                        Some(recent.iter().sum::<f64>() / window as f64)
                    } else {
                        None
                    });
                }
                None => out.push(None),
            }
        }
        DailySeries { values: out }
    }

    /// `(day, value)` pairs for recorded days — plot-ready.
    pub fn points(&self) -> Vec<(usize, f64)> {
        self.values
            .iter()
            .enumerate()
            .filter_map(|(d, v)| v.map(|x| (d, x)))
            .collect()
    }

    /// Minimum and maximum recorded values, if any.
    pub fn range(&self) -> Option<(f64, f64)> {
        let mut it = self.values.iter().copied().flatten();
        let first = it.next()?;
        Some(it.fold((first, first), |(lo, hi), v| (lo.min(v), hi.max(v))))
    }
}

/// Element-wise ratio of two series as percentages (`100 * a / b`),
/// recorded only where both are recorded and the denominator is non-zero.
/// This is how Figs. 8-12 (percent of infinite-cache HR) and Fig. 15
/// (percent of random-secondary WHR) are computed.
pub fn ratio_percent(numerator: &DailySeries, denominator: &DailySeries) -> DailySeries {
    let n = numerator.values.len().max(denominator.values.len());
    let get = |s: &DailySeries, i: usize| s.values.get(i).copied().flatten();
    let values = (0..n)
        .map(|i| match (get(numerator, i), get(denominator, i)) {
            (Some(a), Some(b)) if b != 0.0 => Some(100.0 * a / b),
            _ => None,
        })
        .collect();
    DailySeries { values }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moving_average_matches_paper_definition() {
        let s = DailySeries::dense((0..10).map(|d| d as f64).collect());
        let ma = s.moving_average(7);
        // Days 0..=5: no point plotted.
        assert!(ma.values[..6].iter().all(|v| v.is_none()));
        // Day 6 = mean of 0..=6 = 3.0; day 9 = mean of 3..=9 = 6.0.
        assert_eq!(ma.values[6], Some(3.0));
        assert_eq!(ma.values[9], Some(6.0));
    }

    #[test]
    fn moving_average_skips_unrecorded_days_in_window() {
        let s = DailySeries::new(vec![
            Some(1.0),
            None,
            Some(3.0),
            None,
            Some(5.0),
            None,
            Some(7.0),
        ]);
        let ma = s.moving_average(7);
        // Window over days 0..=6 has 4 recorded values.
        assert_eq!(ma.values[6], Some(4.0));
    }

    #[test]
    fn recorded_window_variant_ignores_calendar_gaps() {
        // Class meets Mon-Thu: 4 recorded days then 3 idle, repeated.
        let mut vals = Vec::new();
        for week in 0..4 {
            for d in 0..4 {
                vals.push(Some((week * 4 + d) as f64));
            }
            vals.extend([None, None, None]);
        }
        let s = DailySeries::new(vals);
        let ma = s.moving_average_recorded(7);
        // First point appears on the 7th recorded day: week 1's 3rd class
        // day, which is calendar day 9 (days 0-3 and 7-9 are recorded).
        let first = ma.values.iter().position(|v| v.is_some()).unwrap();
        assert_eq!(first, 9);
        assert_eq!(ma.values[9], Some(3.0)); // mean of values 0..=6
                                             // Idle days stay unrecorded.
        assert!(ma.values[4].is_none() && ma.values[5].is_none());
    }

    #[test]
    fn mean_ignores_unrecorded_days() {
        let s = DailySeries::new(vec![Some(2.0), None, Some(4.0)]);
        assert_eq!(s.mean(), 3.0);
        assert_eq!(DailySeries::new(vec![None]).mean(), 0.0);
    }

    #[test]
    fn ratio_percent_handles_gaps_and_zero_denominator() {
        let a = DailySeries::new(vec![Some(1.0), Some(2.0), None, Some(3.0)]);
        let b = DailySeries::new(vec![Some(2.0), Some(0.0), Some(4.0), Some(6.0)]);
        let r = ratio_percent(&a, &b);
        assert_eq!(r.values, vec![Some(50.0), None, None, Some(50.0)]);
    }

    #[test]
    fn points_and_range() {
        let s = DailySeries::new(vec![None, Some(5.0), Some(1.0), None]);
        assert_eq!(s.points(), vec![(1, 5.0), (2, 1.0)]);
        assert_eq!(s.range(), Some((1.0, 5.0)));
        assert_eq!(DailySeries::new(vec![None]).range(), None);
        assert_eq!(s.len(), 4);
        assert!(!s.is_empty());
    }

    #[test]
    fn window_one_is_identity_on_recorded_days() {
        let s = DailySeries::new(vec![Some(1.0), None, Some(3.0)]);
        assert_eq!(s.moving_average(1).values, s.values);
    }
}
