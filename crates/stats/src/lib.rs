//! # webcache-stats
//!
//! Statistics and reporting for the SIGCOMM '96 removal-policy
//! reproduction:
//!
//! * [`series`] — daily HR/WHR series with the paper's 7-day moving
//!   average (calendar and recorded-days variants) and the
//!   percent-of-reference transform behind Figs. 8-12 and 15.
//! * [`zipf`] — rank-frequency power-law fits for Figs. 1-2.
//! * [`histogram`] — document-size histograms (Fig. 13).
//! * [`scatter`] — size/interreference summaries (Fig. 14).
//! * [`summary`] — descriptive statistics and bootstrap CIs for the
//!   multi-seed replication runs.
//! * [`report`] — aligned ASCII tables, CSV export, ASCII line plots.

#![warn(missing_docs)]

pub mod histogram;
pub mod report;
pub mod scatter;
pub mod series;
pub mod summary;
pub mod zipf;

pub use histogram::Histogram;
pub use report::Table;
pub use series::{ratio_percent, DailySeries};
pub use zipf::ZipfFit;
