//! Zipf rank-frequency analysis (Figs. 1-2 and the section 2.2 discussion:
//! "the number of requests to each server in workload BL follows a Zipf
//! distribution").
//!
//! Given descending counts (requests per server, bytes per URL), this
//! module produces log-log rank/count points and fits a power law
//! `count ≈ C · rank^(-alpha)` by least squares in log space. A Zipf
//! distribution proper has `alpha ≈ 1`.

use serde::{Deserialize, Serialize};

/// Result of a power-law fit on rank-count data.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ZipfFit {
    /// Exponent `alpha` of `count ∝ rank^(-alpha)`.
    pub alpha: f64,
    /// `log10` of the constant `C`.
    pub log10_c: f64,
    /// Coefficient of determination of the log-log regression.
    pub r_squared: f64,
    /// Number of ranks used.
    pub n: usize,
}

/// Fit `count ≈ C · rank^(-alpha)` to descending counts by linear
/// regression of `log10 count` on `log10 rank`. Zero counts are skipped.
/// Returns `None` with fewer than two usable points.
pub fn fit(desc_counts: &[u64]) -> Option<ZipfFit> {
    let pts: Vec<(f64, f64)> = desc_counts
        .iter()
        .enumerate()
        .filter(|(_, &c)| c > 0)
        .map(|(i, &c)| (((i + 1) as f64).log10(), (c as f64).log10()))
        .collect();
    if pts.len() < 2 {
        return None;
    }
    let n = pts.len() as f64;
    let (sx, sy): (f64, f64) = pts.iter().fold((0.0, 0.0), |(a, b), (x, y)| (a + x, b + y));
    let (mx, my) = (sx / n, sy / n);
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    let mut syy = 0.0;
    for &(x, y) in &pts {
        sxx += (x - mx) * (x - mx);
        sxy += (x - mx) * (y - my);
        syy += (y - my) * (y - my);
    }
    if sxx == 0.0 {
        return None;
    }
    let slope = sxy / sxx;
    let r_squared = if syy == 0.0 {
        1.0
    } else {
        (sxy * sxy) / (sxx * syy)
    };
    Some(ZipfFit {
        alpha: -slope,
        log10_c: my - slope * mx,
        r_squared,
        n: pts.len(),
    })
}

/// `(rank, count)` points for plotting a Fig. 1/2-style log-log curve,
/// thinned to roughly `max_points` geometrically spaced ranks.
pub fn rank_points(desc_counts: &[u64], max_points: usize) -> Vec<(usize, u64)> {
    if desc_counts.is_empty() || max_points == 0 {
        return Vec::new();
    }
    if desc_counts.len() <= max_points {
        return desc_counts
            .iter()
            .enumerate()
            .map(|(i, &c)| (i + 1, c))
            .collect();
    }
    let ratio = (desc_counts.len() as f64).powf(1.0 / (max_points as f64 - 1.0));
    let mut out = Vec::with_capacity(max_points);
    let mut last = 0usize;
    let mut r = 1.0f64;
    for _ in 0..max_points {
        let rank = (r.round() as usize).clamp(1, desc_counts.len());
        if rank > last {
            out.push((rank, desc_counts[rank - 1]));
            last = rank;
        }
        r *= ratio;
    }
    if let (true, Some(&tail)) = (last < desc_counts.len(), desc_counts.last()) {
        out.push((desc_counts.len(), tail));
    }
    out
}

/// How many items cover `fraction` of the total (the paper's
/// "approximately 290 URLs of 36,771 … returned 50% of the total requested
/// bytes"). Input must be descending.
pub fn coverage_count(desc_counts: &[u64], fraction: f64) -> usize {
    assert!((0.0..=1.0).contains(&fraction));
    let total: u64 = desc_counts.iter().sum();
    if total == 0 {
        return 0;
    }
    let target = total as f64 * fraction;
    let mut acc = 0.0;
    for (i, &c) in desc_counts.iter().enumerate() {
        acc += c as f64;
        if acc >= target {
            return i + 1;
        }
    }
    desc_counts.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_recovers_exact_power_law() {
        // count = 10_000 / rank  (alpha = 1)
        let counts: Vec<u64> = (1..=1000u64).map(|r| 10_000 / r).collect();
        let f = fit(&counts).unwrap();
        assert!((f.alpha - 1.0).abs() < 0.08, "alpha {}", f.alpha);
        assert!(f.r_squared > 0.98);
    }

    #[test]
    fn fit_recovers_steeper_exponent() {
        let counts: Vec<u64> = (1..=500u64)
            .map(|r| (1e9 / (r as f64).powf(2.0)) as u64)
            .collect();
        let f = fit(&counts).unwrap();
        assert!((f.alpha - 2.0).abs() < 0.05, "alpha {}", f.alpha);
    }

    #[test]
    fn fit_requires_two_points_and_variation() {
        assert!(fit(&[]).is_none());
        assert!(fit(&[5]).is_none());
        assert!(fit(&[5, 5]).is_some());
        assert!(fit(&[0, 0, 5]).is_none(), "one usable point");
    }

    #[test]
    fn coverage_count_finds_the_head() {
        // One giant, many small: the giant alone covers 50%.
        let mut counts = vec![1000u64];
        counts.extend(std::iter::repeat_n(10, 100));
        assert_eq!(coverage_count(&counts, 0.5), 1);
        assert_eq!(coverage_count(&counts, 1.0), 101);
        assert_eq!(coverage_count(&[], 0.5), 0);
    }

    #[test]
    fn rank_points_thin_geometrically_and_keep_endpoints() {
        let counts: Vec<u64> = (0..10_000u64).map(|i| 10_000 - i).collect();
        let pts = rank_points(&counts, 20);
        assert!(pts.len() <= 22);
        assert_eq!(pts.first().unwrap().0, 1);
        assert_eq!(pts.last().unwrap().0, 10_000);
        // Ranks strictly increase.
        assert!(pts.windows(2).all(|w| w[0].0 < w[1].0));
        // Short inputs pass through untouched.
        let short = rank_points(&[9, 5, 1], 20);
        assert_eq!(short, vec![(1, 9), (2, 5), (3, 1)]);
    }
}
