//! Plain-text report rendering: aligned ASCII tables, CSV export, and a
//! small ASCII line plot for eyeballing the figure series in a terminal.

use crate::series::DailySeries;
use std::fmt::Write as _;

/// An aligned ASCII table builder.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Table {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row; it must match the header width.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Table {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with aligned columns (first column left-aligned, the rest
    /// right-aligned, as in the paper's tables).
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                if i == 0 {
                    let _ = write!(out, "{:<w$}", cell, w = widths[i]);
                } else {
                    let _ = write!(out, "{:>w$}", cell, w = widths[i]);
                }
            }
            out.push('\n');
        };
        fmt_row(&mut out, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            fmt_row(&mut out, row);
        }
        out
    }

    /// Render as CSV (RFC-4180-style quoting of commas/quotes).
    pub fn to_csv(&self) -> String {
        let quote = |s: &String| {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.clone()
            }
        };
        let mut out = String::new();
        let mut write_row = |cells: &[String]| {
            let line: Vec<String> = cells.iter().map(&quote).collect();
            out.push_str(&line.join(","));
            out.push('\n');
        };
        write_row(&self.header);
        for row in &self.rows {
            write_row(row);
        }
        out
    }
}

/// Format a fraction as a percentage with two decimals (`"47.43"`), the
/// paper's table style.
pub fn pct(fraction: f64) -> String {
    format!("{:.2}", fraction * 100.0)
}

/// Format bytes in the unit the paper uses for cache sizes (MB, where
/// 1 MB = 2^20 bytes), one decimal.
pub fn mb(bytes: u64) -> String {
    format!("{:.1}", bytes as f64 / (1u64 << 20) as f64)
}

/// Render one or more daily series as an ASCII line chart, `height` rows
/// tall, with y-range `[lo, hi]`. Each series draws with its own glyph.
pub fn ascii_plot(series: &[(&str, &DailySeries)], height: usize, lo: f64, hi: f64) -> String {
    assert!(height >= 2 && hi > lo);
    let width = series
        .iter()
        .map(|(_, s)| s.len())
        .max()
        .unwrap_or(0)
        .max(1);
    const GLYPHS: [char; 6] = ['*', '+', 'o', 'x', '#', '@'];
    let mut grid = vec![vec![' '; width]; height];
    for (si, (_, s)) in series.iter().enumerate() {
        let glyph = GLYPHS[si % GLYPHS.len()];
        for (day, v) in s.points() {
            let frac = ((v - lo) / (hi - lo)).clamp(0.0, 1.0);
            let row = ((1.0 - frac) * (height - 1) as f64).round() as usize;
            grid[row][day.min(width - 1)] = glyph;
        }
    }
    let mut out = String::new();
    for (i, row) in grid.iter().enumerate() {
        let y = hi - (hi - lo) * i as f64 / (height - 1) as f64;
        let _ = writeln!(out, "{:>7.1} |{}", y, row.iter().collect::<String>());
    }
    let _ = writeln!(out, "        +{}", "-".repeat(width));
    let mut legend = String::from("         ");
    for (si, (name, _)) in series.iter().enumerate() {
        let _ = write!(legend, "{}={}  ", GLYPHS[si % GLYPHS.len()], name);
    }
    out.push_str(legend.trim_end());
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(vec!["Workload", "HR", "WHR"]);
        t.row(vec!["U", "50.1", "48.9"]);
        t.row(vec!["BR", "98.0", "95.0"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("Workload"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // Right alignment of numeric columns.
        assert!(lines[2].contains("50.1"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn table_rejects_ragged_rows() {
        Table::new(vec!["a", "b"]).row(vec!["only-one"]);
    }

    #[test]
    fn csv_quotes_special_cells() {
        let mut t = Table::new(vec!["name", "note"]);
        t.row(vec!["a,b", "say \"hi\""]);
        let csv = t.to_csv();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.4743), "47.43");
        assert_eq!(mb(221 * (1 << 20)), "221.0");
    }

    #[test]
    fn ascii_plot_places_points() {
        let s = DailySeries::dense(vec![0.0, 50.0, 100.0]);
        let plot = ascii_plot(&[("hr", &s)], 5, 0.0, 100.0);
        let lines: Vec<&str> = plot.lines().collect();
        // Top row holds the 100.0 point (day 2), bottom row the 0.0 point.
        assert!(lines[0].ends_with("  *") || lines[0].contains('*'));
        assert!(lines[4].contains('*'));
        assert!(plot.contains("*=hr"));
    }
}
