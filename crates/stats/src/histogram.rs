//! Histograms: the document-size distribution of Fig. 13 (linear bins)
//! and log-binned variants for heavy-tailed data.

use serde::{Deserialize, Serialize};

/// A histogram over `u64` observations.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Histogram {
    /// Inclusive lower edge of each bin.
    pub edges: Vec<u64>,
    /// Count per bin; `counts[i]` covers `edges[i] ..
    /// edges[i+1]` (last bin extends to the configured maximum).
    pub counts: Vec<u64>,
    /// Observations above the last edge's bin.
    pub overflow: u64,
}

impl Histogram {
    /// Linear bins of `width` from 0 to `max` (Fig. 13 uses widths around
    /// 250 bytes up to 20 kB). Values ≥ `max` land in `overflow`.
    pub fn linear(values: &[u64], width: u64, max: u64) -> Histogram {
        assert!(width > 0 && max >= width);
        let nbins = max.div_ceil(width) as usize;
        let mut counts = vec![0u64; nbins];
        let mut overflow = 0;
        for &v in values {
            if v >= max {
                overflow += 1;
            } else {
                counts[(v / width) as usize] += 1;
            }
        }
        Histogram {
            edges: (0..nbins as u64).map(|i| i * width).collect(),
            counts,
            overflow,
        }
    }

    /// Power-of-two bins: bin `i` covers `[2^i, 2^(i+1))`, with a zero bin
    /// first. Natural for document sizes spanning bytes to megabytes.
    pub fn log2(values: &[u64]) -> Histogram {
        let max_bin = values
            .iter()
            .map(|&v| if v == 0 { 0 } else { v.ilog2() as usize + 1 })
            .max()
            .unwrap_or(0);
        let mut counts = vec![0u64; max_bin + 1];
        for &v in values {
            let bin = if v == 0 { 0 } else { v.ilog2() as usize + 1 };
            counts[bin] += 1;
        }
        let mut edges = vec![0u64];
        edges.extend((0..max_bin as u32).map(|i| 1u64 << i));
        Histogram {
            edges,
            counts,
            overflow: 0,
        }
    }

    /// Total observations, including overflow.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum::<u64>() + self.overflow
    }

    /// The lower edge of the fullest bin — where the distribution's mass
    /// concentrates (the paper: "the mass is concentrated in file sizes of
    /// under 1KB").
    pub fn mode_bin_edge(&self) -> Option<u64> {
        if self.total() == 0 {
            return None;
        }
        let (i, _) = self.counts.iter().enumerate().max_by_key(|&(_, c)| *c)?;
        Some(self.edges[i])
    }

    /// Approximate `q`-quantile (`0.0 ..= 1.0`) at bin resolution,
    /// linearly interpolated inside the straddling bin. Overflow
    /// observations sit past the last bin, so a quantile landing among
    /// them reports the last bin's upper edge — a lower bound on the
    /// true value. `None` for an empty histogram or `q` out of range.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        let total = self.total();
        if total == 0 || !(0.0..=1.0).contains(&q) {
            return None;
        }
        let target = q * total as f64;
        let mut acc = 0.0;
        for (i, &count) in self.counts.iter().enumerate() {
            let next = acc + count as f64;
            if next >= target && count > 0 {
                let lo = self.edges[i];
                let hi = self.bin_upper_edge(i);
                let frac = ((target - acc) / count as f64).clamp(0.0, 1.0);
                return Some(lo + ((hi - lo) as f64 * frac) as u64);
            }
            acc = next;
        }
        self.edges
            .last()
            .map(|_| self.bin_upper_edge(self.edges.len() - 1))
    }

    /// The exclusive upper edge of bin `i`. The last bin has no recorded
    /// edge; mirror `cumulative_fraction_below`'s convention of doubling
    /// its lower edge.
    fn bin_upper_edge(&self, i: usize) -> u64 {
        let lo = self.edges[i];
        self.edges
            .get(i + 1)
            .copied()
            .unwrap_or_else(|| lo.saturating_mul(2).max(lo + 1))
    }

    /// Fraction of (non-overflow) observations at or below `value`,
    /// resolved at bin granularity (whole bins whose range lies within
    /// `..=value` count fully; the straddling bin counts proportionally).
    pub fn cumulative_fraction_below(&self, value: u64) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let mut acc = 0.0;
        for (i, &count) in self.counts.iter().enumerate() {
            let lo = self.edges[i];
            let hi = self
                .edges
                .get(i + 1)
                .copied()
                .unwrap_or_else(|| self.edges[i].saturating_mul(2).max(lo + 1));
            if hi <= value {
                acc += count as f64;
            } else if lo <= value {
                let span = (hi - lo).max(1) as f64;
                acc += count as f64 * ((value - lo + 1) as f64 / span).min(1.0);
            }
        }
        acc / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_bins_count_correctly() {
        let h = Histogram::linear(&[0, 100, 250, 499, 500, 999, 5000], 250, 1000);
        assert_eq!(h.counts, vec![2, 2, 1, 1]);
        assert_eq!(h.overflow, 1);
        assert_eq!(h.total(), 7);
        assert_eq!(h.edges, vec![0, 250, 500, 750]);
    }

    #[test]
    fn log2_bins_are_powers_of_two() {
        let h = Histogram::log2(&[0, 1, 2, 3, 4, 1024, 1500]);
        // bins: {0}, [1,2), [2,4), [4,8), ... [1024,2048)
        assert_eq!(h.counts[0], 1); // 0
        assert_eq!(h.counts[1], 1); // 1
        assert_eq!(h.counts[2], 2); // 2,3
        assert_eq!(h.counts[3], 1); // 4
        assert_eq!(*h.counts.last().unwrap(), 2); // 1024, 1500
        assert_eq!(h.total(), 7);
    }

    #[test]
    fn mode_bin_finds_concentration() {
        let mut sizes = vec![100u64; 50]; // heavy mass under 250
        sizes.extend(vec![10_000u64; 5]);
        let h = Histogram::linear(&sizes, 250, 20_000);
        assert_eq!(h.mode_bin_edge(), Some(0));
    }

    #[test]
    fn cumulative_fraction_is_monotone() {
        let sizes: Vec<u64> = (0..1000).map(|i| i * 10).collect();
        let h = Histogram::linear(&sizes, 100, 10_000);
        let f1 = h.cumulative_fraction_below(1000);
        let f2 = h.cumulative_fraction_below(5000);
        let f3 = h.cumulative_fraction_below(9999);
        assert!(f1 < f2 && f2 < f3);
        assert!(f3 <= 1.0);
        assert!((f2 - 0.5).abs() < 0.02);
    }

    #[test]
    fn quantiles_interpolate_within_bins() {
        // Uniform 0..10_000: quantiles land near q * 10_000.
        let sizes: Vec<u64> = (0..1000).map(|i| i * 10).collect();
        let h = Histogram::linear(&sizes, 100, 10_000);
        for (q, expect) in [(0.5, 5_000u64), (0.9, 9_000), (0.99, 9_900)] {
            let got = h.quantile(q).unwrap();
            assert!(
                got.abs_diff(expect) <= 100,
                "q={q}: got {got}, expected ~{expect}"
            );
        }
        // Quantiles are monotone in q.
        assert!(h.quantile(0.5) <= h.quantile(0.9));
        assert!(h.quantile(0.9) <= h.quantile(1.0));
        // A quantile landing in overflow reports the binned upper bound
        // (the doubled-last-edge convention of cumulative_fraction_below).
        let h = Histogram::linear(&[50, 50, 50, 99_999], 100, 1_000);
        assert_eq!(h.quantile(1.0), Some(1_800));
        // Out-of-range q is refused.
        assert_eq!(h.quantile(1.5), None);
        assert_eq!(h.quantile(-0.1), None);
    }

    #[test]
    fn empty_histograms_are_sane() {
        assert_eq!(Histogram::linear(&[], 10, 100).quantile(0.5), None);
        let h = Histogram::linear(&[], 10, 100);
        assert_eq!(h.total(), 0);
        assert_eq!(h.cumulative_fraction_below(50), 0.0);
        let h2 = Histogram::log2(&[]);
        assert_eq!(h2.total(), 0);
        assert_eq!(h2.mode_bin_edge(), None);
    }
}
