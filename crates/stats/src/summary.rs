//! Descriptive statistics for experiment outputs: quantiles, moments, and
//! bootstrap confidence intervals for the multi-seed replication runs
//! (the paper reported single-trace numbers; we quantify the spread).

use serde::{Deserialize, Serialize};

/// Five-number-plus summary of a sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n-1 denominator).
    pub stddev: f64,
    /// Minimum.
    pub min: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Maximum.
    pub max: f64,
}

/// Linear-interpolated quantile of a *sorted* slice, `q` in `[0, 1]`.
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty() && (0.0..=1.0).contains(&q));
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// Compute the summary of a sample. Returns `None` for an empty sample.
pub fn summarize(values: &[f64]) -> Option<Summary> {
    if values.is_empty() {
        return None;
    }
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    let n = sorted.len();
    let mean = sorted.iter().sum::<f64>() / n as f64;
    let var = if n < 2 {
        0.0
    } else {
        sorted.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1) as f64
    };
    Some(Summary {
        n,
        mean,
        stddev: var.sqrt(),
        min: sorted[0],
        q1: quantile_sorted(&sorted, 0.25),
        median: quantile_sorted(&sorted, 0.5),
        q3: quantile_sorted(&sorted, 0.75),
        max: sorted[n - 1],
    })
}

/// Percentile bootstrap confidence interval for the mean, deterministic
/// for a given seed. Returns `(lo, hi)` at the given confidence level
/// (e.g. 0.95); `None` for an empty sample.
pub fn bootstrap_mean_ci(
    values: &[f64],
    confidence: f64,
    resamples: usize,
    seed: u64,
) -> Option<(f64, f64)> {
    if values.is_empty() || resamples == 0 {
        return None;
    }
    assert!((0.0..1.0).contains(&confidence) && confidence > 0.0);
    // SplitMix64 stream: self-contained, no rand dependency needed here.
    let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut x = state;
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^ (x >> 31)
    };
    let mut means = Vec::with_capacity(resamples);
    for _ in 0..resamples {
        let mut acc = 0.0;
        for _ in 0..values.len() {
            acc += values[(next() % values.len() as u64) as usize];
        }
        means.push(acc / values.len() as f64);
    }
    means.sort_by(f64::total_cmp);
    let alpha = (1.0 - confidence) / 2.0;
    Some((
        quantile_sorted(&means, alpha),
        quantile_sorted(&means, 1.0 - alpha),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let s = summarize(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(s.n, 5);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.q1, 2.0);
        assert_eq!(s.q3, 4.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert!((s.stddev - (2.5f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn summary_edge_cases() {
        assert!(summarize(&[]).is_none());
        let one = summarize(&[7.0]).unwrap();
        assert_eq!(one.stddev, 0.0);
        assert_eq!(one.median, 7.0);
    }

    #[test]
    fn quantiles_interpolate() {
        let v = [0.0, 10.0];
        assert_eq!(quantile_sorted(&v, 0.0), 0.0);
        assert_eq!(quantile_sorted(&v, 0.5), 5.0);
        assert_eq!(quantile_sorted(&v, 1.0), 10.0);
        assert_eq!(quantile_sorted(&[42.0], 0.3), 42.0);
    }

    #[test]
    fn bootstrap_ci_brackets_the_mean_and_narrows() {
        let sample: Vec<f64> = (0..100).map(|i| (i % 10) as f64).collect();
        let mean = 4.5;
        let (lo, hi) = bootstrap_mean_ci(&sample, 0.95, 500, 1).unwrap();
        assert!(lo <= mean && mean <= hi, "[{lo}, {hi}]");
        assert!(hi - lo < 2.0, "CI too wide: [{lo}, {hi}]");
        // Deterministic for a seed.
        assert_eq!(bootstrap_mean_ci(&sample, 0.95, 500, 1).unwrap(), (lo, hi));
        assert!(bootstrap_mean_ci(&[], 0.95, 100, 1).is_none());
    }
}
