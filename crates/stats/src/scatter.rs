//! Scatter-plot analysis for Fig. 14 (document size vs. interreference
//! time).
//!
//! The paper reads two things off this plot: the *center of mass* "lies in
//! a region with relatively small size (just over 1kB) but large
//! interreference time (about 15,000 seconds)", and the marginal histogram
//! of interreference times has its mass at long times — i.e., the
//! temporal locality LRU relies on is weak. This module computes those
//! summaries from the raw `(size, interreference)` pairs.

use serde::{Deserialize, Serialize};

/// Summary statistics of a `(size, interreference_time)` point cloud.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScatterSummary {
    /// Number of points.
    pub n: usize,
    /// Geometric mean of sizes (bytes) — the log-space center of mass the
    /// paper reads off its log-log plot.
    pub geo_mean_size: f64,
    /// Geometric mean of interreference times (seconds).
    pub geo_mean_interref: f64,
    /// Median size.
    pub median_size: u64,
    /// Median interreference time.
    pub median_interref: u64,
    /// Fraction of points with interreference time below one hour —
    /// the short-time mass a temporally-local trace would concentrate.
    pub frac_interref_under_hour: f64,
}

/// Compute the summary. Zero values participate in medians/fractions but
/// are excluded from geometric means (log undefined).
pub fn summarize(points: &[(u64, u64)]) -> Option<ScatterSummary> {
    if points.is_empty() {
        return None;
    }
    let mut sizes: Vec<u64> = points.iter().map(|&(s, _)| s).collect();
    let mut times: Vec<u64> = points.iter().map(|&(_, t)| t).collect();
    sizes.sort_unstable();
    times.sort_unstable();
    let geo = |v: &[u64]| {
        let logs: Vec<f64> = v
            .iter()
            .filter(|&&x| x > 0)
            .map(|&x| (x as f64).ln())
            .collect();
        if logs.is_empty() {
            0.0
        } else {
            (logs.iter().sum::<f64>() / logs.len() as f64).exp()
        }
    };
    let under_hour = times.iter().filter(|&&t| t < 3600).count();
    Some(ScatterSummary {
        n: points.len(),
        geo_mean_size: geo(&sizes),
        geo_mean_interref: geo(&times),
        median_size: sizes[sizes.len() / 2],
        median_interref: times[times.len() / 2],
        frac_interref_under_hour: under_hour as f64 / points.len() as f64,
    })
}

/// Thin a scatter to at most `max_points` points for plotting, keeping a
/// deterministic stride so the shape is preserved.
pub fn thin(points: &[(u64, u64)], max_points: usize) -> Vec<(u64, u64)> {
    if points.len() <= max_points || max_points == 0 {
        return points.to_vec();
    }
    let stride = points.len().div_ceil(max_points);
    points.iter().step_by(stride).copied().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_cloud() {
        // 3 points: sizes 100, 1000, 10000 → geo mean 1000.
        let pts = vec![(100, 10), (1000, 1000), (10_000, 100_000)];
        let s = summarize(&pts).unwrap();
        assert!((s.geo_mean_size - 1000.0).abs() < 1e-6);
        assert!((s.geo_mean_interref - 1000.0).abs() < 1e-6);
        assert_eq!(s.median_size, 1000);
        assert_eq!(s.median_interref, 1000);
        assert!((s.frac_interref_under_hour - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_cloud_yields_none() {
        assert!(summarize(&[]).is_none());
    }

    #[test]
    fn zeros_do_not_poison_geometric_means() {
        let s = summarize(&[(0, 0), (100, 100)]).unwrap();
        assert!((s.geo_mean_size - 100.0).abs() < 1e-9);
        assert!((s.geo_mean_interref - 100.0).abs() < 1e-9);
    }

    #[test]
    fn thin_preserves_endpoints_roughly_and_bounds_count() {
        let pts: Vec<(u64, u64)> = (0..1000).map(|i| (i, i * 2)).collect();
        let t = thin(&pts, 100);
        assert!(t.len() <= 100);
        assert_eq!(t[0], (0, 0));
        let short = thin(&pts[..5], 100);
        assert_eq!(short.len(), 5);
    }
}
