//! Derive macros for the in-repo serde substitute.
//!
//! `#[derive(Serialize)]` generates a JSON writer for named-field structs,
//! tuple structs, and enums with unit variants — the only shapes this
//! workspace serialises. `#[derive(Deserialize)]` expands to nothing (the
//! workspace never deserialises; the derive exists so seed code keeps
//! compiling unchanged).
//!
//! Implemented directly over `proc_macro::TokenStream` (no syn/quote —
//! those crates are unavailable offline): the item is tokenised, the shape
//! is recognised, and the impl is emitted as source text.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive the JSON-writing `Serialize` impl.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let item = parse_item(&tokens);
    let body = match &item.shape {
        Shape::NamedStruct(fields) => named_struct_body(fields),
        Shape::TupleStruct(n) => tuple_struct_body(*n),
        Shape::UnitStruct => "out.push_str(\"null\");".to_string(),
        Shape::Enum(variants) => enum_body(&item.name, variants),
    };
    format!(
        "impl ::serde::Serialize for {} {{\n\
         fn serialize_json(&self, out: &mut String) {{\n{}\n}}\n}}",
        item.name, body
    )
    .parse()
    .expect("serde_derive: generated impl failed to parse")
}

/// No-op derive: deserialisation is unused in this workspace.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

enum Shape {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<String>),
}

struct Item {
    name: String,
    shape: Shape,
}

fn named_struct_body(fields: &[String]) -> String {
    let mut b = String::from("out.push('{');\n");
    for (i, f) in fields.iter().enumerate() {
        if i > 0 {
            b.push_str("out.push(',');\n");
        }
        b.push_str(&format!(
            "::serde::write_json_string(\"{f}\", out); out.push(':');\n\
             ::serde::Serialize::serialize_json(&self.{f}, out);\n"
        ));
    }
    b.push_str("out.push('}');");
    b
}

fn tuple_struct_body(n: usize) -> String {
    match n {
        0 => "out.push_str(\"null\");".to_string(),
        // Newtype: serialise transparently, like real serde.
        1 => "::serde::Serialize::serialize_json(&self.0, out);".to_string(),
        n => {
            let mut b = String::from("out.push('[');\n");
            for i in 0..n {
                if i > 0 {
                    b.push_str("out.push(',');\n");
                }
                b.push_str(&format!(
                    "::serde::Serialize::serialize_json(&self.{i}, out);\n"
                ));
            }
            b.push_str("out.push(']');");
            b
        }
    }
}

fn enum_body(name: &str, variants: &[String]) -> String {
    let arms: String = variants
        .iter()
        .map(|v| format!("{name}::{v} => ::serde::write_json_string(\"{v}\", out),\n"))
        .collect();
    format!("match self {{\n{arms}}}")
}

fn parse_item(tokens: &[TokenTree]) -> Item {
    let mut i = 0;
    skip_attrs(tokens, &mut i);
    skip_visibility(tokens, &mut i);
    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected struct/enum, found {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected type name, found {other}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive substitute does not support generic types ({name})");
    }
    let shape = match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct,
            other => panic!("serde_derive: unsupported struct body ({other:?})"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_unit_variants(g.stream(), &name))
            }
            other => panic!("serde_derive: unsupported enum body ({other:?})"),
        },
        other => panic!("serde_derive: cannot derive for `{other}` items"),
    };
    Item { name, shape }
}

fn skip_attrs(tokens: &[TokenTree], i: &mut usize) {
    while matches!(tokens.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        *i += 1; // '#'
        if matches!(tokens.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '!') {
            *i += 1;
        }
        *i += 1; // the [...] group
    }
}

fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if matches!(tokens.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        if matches!(
            tokens.get(*i),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
        ) {
            *i += 1; // pub(crate) / pub(super)
        }
    }
}

/// Field names of a named-field struct body.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs(&tokens, &mut i);
        skip_visibility(&tokens, &mut i);
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break;
        };
        fields.push(id.to_string());
        i += 1;
        // Skip `:` and the type, up to a comma at angle depth 0.
        let mut angle = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    fields
}

/// Number of fields in a tuple-struct body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut n = 1;
    let mut angle = 0i32;
    let mut saw_trailing_comma = false;
    for (idx, t) in tokens.iter().enumerate() {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                if idx == tokens.len() - 1 {
                    saw_trailing_comma = true;
                } else {
                    n += 1;
                }
            }
            _ => {}
        }
    }
    let _ = saw_trailing_comma;
    n
}

/// Variant names of a unit-variant enum body.
fn parse_unit_variants(stream: TokenStream, enum_name: &str) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs(&tokens, &mut i);
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break;
        };
        variants.push(id.to_string());
        i += 1;
        match tokens.get(i) {
            None => break,
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                // Explicit discriminant: skip to the next comma.
                while i < tokens.len()
                    && !matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ',')
                {
                    i += 1;
                }
                i += 1;
            }
            Some(TokenTree::Group(_)) => panic!(
                "serde_derive substitute supports only unit variants \
                 (enum {enum_name}, variant {})",
                variants.last().unwrap()
            ),
            Some(other) => panic!("serde_derive: unexpected token {other} in enum {enum_name}"),
        }
    }
    variants
}
