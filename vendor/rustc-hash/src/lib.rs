//! Offline in-repo substitute for `rustc-hash`.
//!
//! Implements the classic Fx multiply-xor hash (the rustc hasher): fast,
//! deterministic, non-cryptographic. Suited to small integer keys like
//! `UrlId`, where SipHash's DoS resistance is pure overhead.

use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The Fx hasher: for each word, `hash = (hash rotl 5 ^ word) * SEED`.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, mut bytes: &[u8]) {
        while bytes.len() >= 8 {
            let (head, rest) = bytes.split_at(8);
            self.add_to_hash(u64::from_le_bytes(head.try_into().unwrap()));
            bytes = rest;
        }
        if !bytes.is_empty() {
            let mut word = [0u8; 8];
            word[..bytes.len()].copy_from_slice(bytes);
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_works_and_is_deterministic() {
        let mut m: FxHashMap<u32, &str> = FxHashMap::default();
        m.insert(1, "a");
        m.insert(2, "b");
        assert_eq!(m.get(&1), Some(&"a"));
        assert_eq!(m.len(), 2);

        let mut h1 = FxHasher::default();
        let mut h2 = FxHasher::default();
        h1.write_u32(42);
        h2.write_u32(42);
        assert_eq!(h1.finish(), h2.finish());
        assert_ne!(h1.finish(), 0);
    }
}
