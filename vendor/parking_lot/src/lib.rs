//! Offline in-repo substitute for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's poison-free API:
//! `lock()` returns the guard directly instead of a `Result`. A poisoned
//! std lock means a thread panicked while holding it; parking_lot's
//! semantics are to keep going, so we do the same via `into_inner()` on
//! the poison error.

/// Mutual exclusion lock with parking_lot's non-poisoning `lock()`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, returning the guard directly (never poisons).
    pub fn lock(&self) -> std::sync::MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<std::sync::MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// Reader-writer lock with parking_lot's non-poisoning accessors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn shared_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let m = Arc::clone(&m);
                s.spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 8000);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }
}
