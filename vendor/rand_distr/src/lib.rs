//! Offline in-repo substitute for `rand_distr`: just the [`LogNormal`]
//! distribution the workload generators draw document sizes from,
//! implemented with the Box-Muller transform over the vendored `rand`.

use rand::distributions::Distribution;
use rand::{Rng, RngCore};

/// Error from invalid distribution parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Error;

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("invalid distribution parameters")
    }
}

impl std::error::Error for Error {}

/// Log-normal distribution: `exp(N(mu, sigma^2))`.
#[derive(Debug, Clone, Copy)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Create from the mean `mu` and standard deviation `sigma` of the
    /// underlying normal.
    pub fn new(mu: f64, sigma: f64) -> Result<LogNormal, Error> {
        if !(mu.is_finite() && sigma.is_finite() && sigma >= 0.0) {
            return Err(Error);
        }
        Ok(LogNormal { mu, sigma })
    }
}

impl Distribution<f64> for LogNormal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // Box-Muller: z ~ N(0, 1) from two uniforms. `u1` is nudged away
        // from zero so ln() stays finite.
        let mut r = rng;
        let u1: f64 = f64::max(Rng::gen::<f64>(&mut r), f64::MIN_POSITIVE);
        let u2: f64 = Rng::gen::<f64>(&mut r);
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        (self.mu + self.sigma * z).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn lognormal_matches_analytic_mean() {
        // E[LogNormal(mu, sigma)] = exp(mu + sigma^2 / 2)
        let (mu, sigma) = (6.0f64, 0.5f64);
        let d = LogNormal::new(mu, sigma).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let n = 200_000;
        let sum: f64 = (0..n).map(|_| d.sample(&mut rng)).sum();
        let mean = sum / n as f64;
        let expect = (mu + sigma * sigma / 2.0).exp();
        assert!(
            (mean - expect).abs() / expect < 0.02,
            "mean {mean} vs analytic {expect}"
        );
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(LogNormal::new(f64::NAN, 1.0).is_err());
        assert!(LogNormal::new(0.0, -1.0).is_err());
    }
}
