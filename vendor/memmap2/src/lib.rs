//! Offline in-repo substitute for `memmap2`.
//!
//! Implements the one API surface this workspace uses: a read-only
//! [`Mmap`] over a whole file, dereferencing to `&[u8]`. On Unix this is a
//! real `mmap(2)` (`PROT_READ`, `MAP_PRIVATE`) via direct libc FFI — the C
//! library is already linked by `std`, so no external crate is needed. On
//! other platforms (and for empty files, which `mmap` rejects) it falls
//! back to reading the file into an owned buffer, preserving the same API
//! and semantics.

use std::fs::File;
use std::io;
use std::ops::Deref;

/// A read-only memory map of a whole file (or an owned fallback buffer).
pub struct Mmap {
    inner: Inner,
}

enum Inner {
    #[cfg(unix)]
    Mapped {
        ptr: *mut std::os::raw::c_void,
        len: usize,
    },
    Owned(Vec<u8>),
}

// The mapping is read-only and owned exclusively by this value.
unsafe impl Send for Mmap {}
unsafe impl Sync for Mmap {}

#[cfg(unix)]
mod sys {
    use std::os::raw::{c_int, c_void};

    pub const PROT_READ: c_int = 1;
    pub const MAP_PRIVATE: c_int = 2;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }
}

impl Mmap {
    /// Map `file` read-only.
    ///
    /// # Safety
    ///
    /// As for upstream `memmap2`: the caller must ensure the file is not
    /// truncated or mutated by another process while the map is alive —
    /// the map is a live view of the file, and access beyond a shrunken
    /// file faults.
    pub unsafe fn map(file: &File) -> io::Result<Mmap> {
        let len = file.metadata()?.len();
        let len = usize::try_from(len)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "file too large to map"))?;
        if len == 0 {
            // mmap(2) rejects zero-length maps; an empty buffer is the
            // same observable value.
            return Ok(Mmap {
                inner: Inner::Owned(Vec::new()),
            });
        }
        #[cfg(unix)]
        {
            use std::os::unix::io::AsRawFd;
            let ptr = sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ,
                sys::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            );
            if ptr as isize == -1 {
                return Err(io::Error::last_os_error());
            }
            Ok(Mmap {
                inner: Inner::Mapped { ptr, len },
            })
        }
        #[cfg(not(unix))]
        {
            use std::io::Read;
            let mut buf = Vec::with_capacity(len);
            let mut f = file.try_clone()?;
            f.read_to_end(&mut buf)?;
            Ok(Mmap {
                inner: Inner::Owned(buf),
            })
        }
    }

    /// Length of the mapped region in bytes.
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// True when the mapped region is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn as_slice(&self) -> &[u8] {
        match &self.inner {
            #[cfg(unix)]
            Inner::Mapped { ptr, len } => unsafe {
                std::slice::from_raw_parts(*ptr as *const u8, *len)
            },
            Inner::Owned(v) => v,
        }
    }
}

impl Deref for Mmap {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Drop for Mmap {
    fn drop(&mut self) {
        #[cfg(unix)]
        if let Inner::Mapped { ptr, len } = self.inner {
            unsafe {
                sys::munmap(ptr, len);
            }
        }
    }
}

impl std::fmt::Debug for Mmap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mmap").field("len", &self.len()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    #[test]
    fn maps_file_contents() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("memmap2_sub_test_{}", std::process::id()));
        let payload = b"hello mapped world".repeat(500);
        std::fs::File::create(&path)
            .unwrap()
            .write_all(&payload)
            .unwrap();
        let f = File::open(&path).unwrap();
        let m = unsafe { Mmap::map(&f) }.unwrap();
        assert_eq!(&m[..], &payload[..]);
        assert_eq!(m.len(), payload.len());
        drop(m);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn maps_empty_file() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("memmap2_sub_empty_{}", std::process::id()));
        std::fs::File::create(&path).unwrap();
        let f = File::open(&path).unwrap();
        let m = unsafe { Mmap::map(&f) }.unwrap();
        assert!(m.is_empty());
        drop(m);
        std::fs::remove_file(&path).unwrap();
    }
}
