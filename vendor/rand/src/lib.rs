//! Offline in-repo substitute for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the slice of the `rand` 0.8 API it actually uses: a
//! deterministic seedable generator ([`rngs::StdRng`], xoshiro256++ seeded
//! through SplitMix64), the [`Rng`] extension trait (`gen`, `gen_range`,
//! `gen_bool`), and the [`distributions::Distribution`] trait. Streams are
//! stable across runs and platforms for a given seed, which is all the
//! synthetic workload generators require — they calibrate against
//! *statistical* targets (Zipf head mass, lognormal means), not against
//! upstream rand's exact bit streams.

/// A source of random 64-bit words.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be produced uniformly from raw random words; backs
/// [`Rng::gen`].
pub trait Standardable {
    /// Draw one value.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standardable for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standardable for f32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standardable for u64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standardable for u32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standardable for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Integer types usable with [`Rng::gen_range`].
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw in `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                // Multiply-shift rejection-free mapping; bias is < 2^-64,
                // far below anything the statistical tests can detect.
                let hi128 = (rng.next_u64() as u128).wrapping_mul(span) >> 64;
                (lo as i128 + hi128 as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(lo: f64, hi: f64, rng: &mut R) -> f64 {
        assert!(lo < hi, "gen_range: empty range");
        lo + f64::from_rng(rng) * (hi - lo)
    }
}

/// Extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform value of type `T` (e.g. `f64` in `[0, 1)`).
    fn gen<T: Standardable>(&mut self) -> T {
        T::from_rng(self)
    }

    /// Uniform draw from a half-open `lo..hi` range.
    fn gen_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T {
        T::sample_half_open(range.start, range.end, self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::from_rng(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Deterministically seed from a single `u64`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// seeded through SplitMix64. (Upstream `StdRng` is ChaCha12; this
    /// substitute keeps the same interface and determinism guarantee.)
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Alias kept for API compatibility.
    pub type SmallRng = StdRng;
}

/// Distribution sampling, mirroring `rand::distributions`.
pub mod distributions {
    use super::RngCore;

    /// A distribution over values of type `T`.
    pub trait Distribution<T> {
        /// Draw one value using `rng`.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The standard uniform distribution (`[0, 1)` for floats).
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Standard;

    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            super::Standardable::from_rng(rng)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64_pub(), b.next_u64_pub());
        }
    }

    impl StdRng {
        fn next_u64_pub(&mut self) -> u64 {
            use super::RngCore;
            self.next_u64()
        }
    }

    #[test]
    fn unit_floats_and_ranges_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        let mut acc = 0.0;
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
            acc += x;
            let k = r.gen_range(10u64..20);
            assert!((10..20).contains(&k));
        }
        let mean = acc / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "uniform mean {mean}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2_200..2_800).contains(&hits), "p=0.25 gave {hits}/10000");
    }
}
