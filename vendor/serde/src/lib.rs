//! Offline in-repo substitute for `serde`.
//!
//! The real serde's data-model indirection is unnecessary here: every use
//! in this workspace ultimately produces JSON through
//! `serde_json::to_string_pretty`. So [`Serialize`] *is* "write yourself as
//! compact JSON", the derive macro generates that directly, and
//! [`Deserialize`] exists only as a marker so `#[derive(Deserialize)]` and
//! `use serde::Deserialize` keep compiling (nothing in the workspace
//! deserialises).

pub use serde_derive::{Deserialize, Serialize};

/// Write `self` as compact JSON onto `out`.
pub trait Serialize {
    /// Append this value's JSON encoding to `out`.
    fn serialize_json(&self, out: &mut String);
}

/// Marker trait kept for API compatibility; never implemented or required.
pub trait Deserialize<'de>: Sized {}

/// Append a JSON string literal (with escaping) to `out`.
pub fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

macro_rules! impl_serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_json(&self, out: &mut String) {
                out.push_str(itoa_buf(*self as i128).as_str());
            }
        }
    )*};
}

fn itoa_buf(v: i128) -> String {
    v.to_string()
}

impl_serialize_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize_json(&self, out: &mut String) {
        if self.is_finite() {
            // `{}` prints integral floats without a dot ("1"), which is
            // still a valid JSON number.
            out.push_str(&format!("{self}"));
        } else {
            out.push_str("null");
        }
    }
}

impl Serialize for f32 {
    fn serialize_json(&self, out: &mut String) {
        (*self as f64).serialize_json(out);
    }
}

impl Serialize for bool {
    fn serialize_json(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}

impl Serialize for String {
    fn serialize_json(&self, out: &mut String) {
        write_json_string(self, out);
    }
}

impl Serialize for str {
    fn serialize_json(&self, out: &mut String) {
        write_json_string(self, out);
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_json(&self, out: &mut String) {
        (**self).serialize_json(out);
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_json(&self, out: &mut String) {
        match self {
            Some(v) => v.serialize_json(out),
            None => out.push_str("null"),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_json(&self, out: &mut String) {
        out.push('[');
        for (i, v) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            v.serialize_json(out);
        }
        out.push(']');
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_json(&self, out: &mut String) {
        self.as_slice().serialize_json(out);
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_json(&self, out: &mut String) {
        self.as_slice().serialize_json(out);
    }
}

macro_rules! impl_serialize_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize_json(&self, out: &mut String) {
                out.push('[');
                let mut first = true;
                $(
                    if !first { out.push(','); }
                    first = false;
                    self.$n.serialize_json(out);
                )+
                let _ = first;
                out.push(']');
            }
        }
    )*};
}

impl_serialize_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
}

/// Maps serialise as JSON objects; non-string keys are rendered to their
/// JSON form and wrapped as the member name.
fn write_map_entry<K: Serialize, V: Serialize>(k: &K, v: &V, first: bool, out: &mut String) {
    if !first {
        out.push(',');
    }
    let mut key = String::new();
    k.serialize_json(&mut key);
    if key.starts_with('"') {
        out.push_str(&key);
    } else {
        write_json_string(&key, out);
    }
    out.push(':');
    v.serialize_json(out);
}

impl<K: Serialize, V: Serialize, S> Serialize for std::collections::HashMap<K, V, S> {
    fn serialize_json(&self, out: &mut String) {
        out.push('{');
        for (i, (k, v)) in self.iter().enumerate() {
            write_map_entry(k, v, i == 0, out);
        }
        out.push('}');
    }
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn serialize_json(&self, out: &mut String) {
        out.push('{');
        for (i, (k, v)) in self.iter().enumerate() {
            write_map_entry(k, v, i == 0, out);
        }
        out.push('}');
    }
}

#[cfg(test)]
mod tests {
    use super::Serialize;

    fn json<T: Serialize>(v: &T) -> String {
        let mut s = String::new();
        v.serialize_json(&mut s);
        s
    }

    #[test]
    fn primitives_and_containers() {
        assert_eq!(json(&3u64), "3");
        assert_eq!(json(&-2i64), "-2");
        assert_eq!(json(&true), "true");
        assert_eq!(json(&1.5f64), "1.5");
        assert_eq!(json(&f64::NAN), "null");
        assert_eq!(json(&"a\"b".to_string()), "\"a\\\"b\"");
        assert_eq!(json(&vec![1u32, 2]), "[1,2]");
        assert_eq!(json(&Some(7u8)), "7");
        assert_eq!(json(&None::<u8>), "null");
        assert_eq!(json(&("x".to_string(), 4u64)), "[\"x\",4]");
    }
}
