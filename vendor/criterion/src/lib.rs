//! Offline in-repo substitute for `criterion`.
//!
//! Mirrors the API surface the bench crate uses (`benchmark_group`,
//! `bench_function`, `Bencher::iter`/`iter_batched`, `Throughput`,
//! `BatchSize`, the `criterion_group!`/`criterion_main!` macros) with a
//! deliberately simple measurement loop: a few warm-up calls, then
//! `sample_size` timed calls, reporting the mean wall-clock time per
//! iteration. No statistical analysis, outlier rejection, or HTML reports
//! — the goal is that `cargo bench` runs and prints comparable numbers,
//! and that bench targets keep compiling offline.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _c: self,
            name: name.into(),
            sample_size: 10,
            throughput: None,
        }
    }
}

/// How throughput is expressed in reports.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Hint for how batched inputs are grouped. Ignored by this substitute
/// (every iteration gets a fresh input).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Warm-up duration hint (accepted for API compatibility; this
    /// substitute always runs a fixed small number of warm-up calls).
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Measurement duration hint (accepted for API compatibility; this
    /// substitute times exactly `sample_size` calls).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Declare the work done per iteration, for ops/sec reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            sample_size: self.sample_size,
            mean: Duration::ZERO,
        };
        f(&mut b);
        let mean = b.mean;
        let label = format!("{}/{}", self.name, id.into());
        match self.throughput {
            Some(Throughput::Elements(n)) if mean > Duration::ZERO => {
                let rate = n as f64 / mean.as_secs_f64();
                println!("bench: {label:<50} {mean:>12.2?}/iter  {rate:>12.0} elem/s");
            }
            Some(Throughput::Bytes(n)) if mean > Duration::ZERO => {
                let rate = n as f64 / mean.as_secs_f64();
                println!("bench: {label:<50} {mean:>12.2?}/iter  {rate:>12.0} B/s");
            }
            _ => println!("bench: {label:<50} {mean:>12.2?}/iter"),
        }
        self
    }

    /// Finish the group (separator line, matching criterion's flow).
    pub fn finish(&mut self) {
        println!();
    }
}

/// Timing context passed to each benchmark closure.
pub struct Bencher {
    sample_size: usize,
    mean: Duration,
}

impl Bencher {
    /// Time `routine`, called `sample_size` times after 2 warm-up calls.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        for _ in 0..2 {
            black_box(routine());
        }
        let start = Instant::now();
        for _ in 0..self.sample_size {
            black_box(routine());
        }
        self.mean = start.elapsed() / self.sample_size as u32;
    }

    /// Time `routine` over inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, R, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> R,
    {
        black_box(routine(setup()));
        let mut total = Duration::ZERO;
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.mean = total / self.sample_size as u32;
    }
}

/// Collect benchmark functions into a runnable group, as in criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Entry point running one or more `criterion_group!`s.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_measures_something() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        let mut calls = 0u32;
        group.bench_function("count", |b| {
            b.iter(|| {
                calls += 1;
                std::hint::black_box(calls)
            })
        });
        group.finish();
        // 2 warm-up + 3 timed.
        assert_eq!(calls, 5);
    }

    #[test]
    fn iter_batched_runs_setup_per_sample() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(4);
        let mut setups = 0u32;
        group.bench_function("batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                },
                |()| (),
                BatchSize::LargeInput,
            )
        });
        // 1 warm-up + 4 timed.
        assert_eq!(setups, 5);
    }
}
