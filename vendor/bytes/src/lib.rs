//! Offline in-repo substitute for `bytes`.
//!
//! [`Bytes`] here is an `Arc<[u8]>`: cheap clones that share one
//! allocation, which is the only property the proxy crate relies on
//! (cloning cached bodies without copying). Slicing views are not
//! implemented — nothing in this workspace takes sub-slices.

use std::sync::Arc;

/// Immutable, cheaply-cloneable byte buffer.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Bytes(Arc<[u8]>);

impl Bytes {
    /// Empty buffer.
    pub fn new() -> Self {
        Bytes(Arc::from(&[][..]))
    }

    /// Copy from a slice.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(Arc::from(data))
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(Arc::from(v.into_boxed_slice()))
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::copy_from_slice(s.as_bytes())
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::copy_from_slice(s)
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes(len={})", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_and_sharing() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        let c = b.clone();
        assert_eq!(&*b, &[1, 2, 3]);
        assert_eq!(b, c);
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
        assert!(Bytes::new().is_empty());
    }
}
