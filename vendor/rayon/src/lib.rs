//! Offline in-repo substitute for `rayon`.
//!
//! Implements the slice of the rayon API this workspace uses —
//! `par_iter`/`into_par_iter` + `map` + `collect`/`for_each`, and
//! `par_chunks_mut` + `for_each` — on `std::thread::scope`. Work is split
//! into contiguous per-thread chunks, so **output order always matches
//! input order**, and a given input produces bit-identical results whether
//! run on 1 thread or 64 (the property the simulation engine's determinism
//! tests rely on). There is no work-stealing pool: parallelism here is
//! coarse (policy lanes, whole simulations), where one thread per chunk is
//! the right granularity anyway.

/// Number of worker threads parallel operations will use.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

/// Map `f` over `items` on up to [`current_num_threads`] scoped threads,
/// preserving order.
fn run_map<T: Send, R: Send, F>(items: Vec<T>, f: &F) -> Vec<R>
where
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = current_num_threads().min(n);
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    // Contiguous split: chunk i gets items [start_i, start_{i+1}).
    let base = n / threads;
    let extra = n % threads;
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(threads);
    let mut rest = items;
    for i in 0..threads {
        let take = base + usize::from(i < extra);
        let tail = rest.split_off(take);
        chunks.push(std::mem::replace(&mut rest, tail));
    }
    std::thread::scope(|s| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| s.spawn(move || chunk.into_iter().map(f).collect::<Vec<R>>()))
            .collect();
        let mut out = Vec::with_capacity(n);
        for h in handles {
            out.extend(h.join().expect("rayon substitute: worker panicked"));
        }
        out
    })
}

/// A materialised parallel iterator.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Map each item through `f` (executed in parallel at the terminal
    /// operation).
    pub fn map<R: Send, F: Fn(T) -> R + Sync>(self, f: F) -> ParMap<T, F> {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Run `f` on every item in parallel.
    pub fn for_each<F: Fn(T) + Sync>(self, f: F) {
        run_map(self.items, &|t| f(t));
    }

    /// Collect the items (no-op map).
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }
}

/// A mapped parallel iterator; terminal ops execute the parallel fan-out.
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send, R: Send, F: Fn(T) -> R + Sync> ParMap<T, F> {
    /// Execute in parallel and collect results in input order.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        run_map(self.items, &self.f).into_iter().collect()
    }

    /// Execute in parallel, discarding results.
    pub fn for_each<G: Fn(R) + Sync>(self, g: G) {
        let f = self.f;
        run_map(self.items, &|t| g(f(t)));
    }
}

/// Owned conversion into a parallel iterator (`Vec<T>`, ranges).
pub trait IntoParallelIterator {
    /// Item type produced.
    type Item: Send;
    /// Convert into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

/// Borrowing conversion (`.par_iter()`).
pub trait IntoParallelRefIterator<'a> {
    /// Borrowed item type.
    type Item: Send + 'a;
    /// Parallel iterator over references.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Send + Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Send + Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// Parallel mutable chunking (`.par_chunks_mut()`).
pub trait ParallelSliceMut<T: Send> {
    /// Split into mutable chunks of at most `size`, processed in parallel.
    fn par_chunks_mut(&mut self, size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, size: usize) -> ParChunksMut<'_, T> {
        assert!(size > 0, "chunk size must be positive");
        ParChunksMut { slice: self, size }
    }
}

/// Parallel iterator over mutable chunks of a slice.
pub struct ParChunksMut<'a, T> {
    slice: &'a mut [T],
    size: usize,
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    /// Run `f` over every chunk, one scoped thread per chunk.
    pub fn for_each<F: Fn(&mut [T]) + Sync>(self, f: F) {
        let n_chunks = self.slice.len().div_ceil(self.size.max(1));
        if n_chunks <= 1 {
            if !self.slice.is_empty() {
                f(self.slice);
            }
            return;
        }
        std::thread::scope(|s| {
            for chunk in self.slice.chunks_mut(self.size) {
                let f = &f;
                s.spawn(move || f(chunk));
            }
        });
    }
}

/// Glob-import surface mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let input: Vec<u64> = (0..1000).collect();
        let out: Vec<u64> = input.clone().into_par_iter().map(|x| x * 2).collect();
        assert_eq!(out, input.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_borrows() {
        let input: Vec<String> = (0..100).map(|i| i.to_string()).collect();
        let lens: Vec<usize> = input.par_iter().map(|s| s.len()).collect();
        assert_eq!(lens, input.iter().map(|s| s.len()).collect::<Vec<_>>());
    }

    #[test]
    fn chunks_mut_touch_every_element_once() {
        let mut data = vec![0u32; 103];
        data.par_chunks_mut(10).for_each(|c| {
            for v in c {
                *v += 1;
            }
        });
        assert!(data.iter().all(|&v| v == 1));
    }

    #[test]
    fn empty_inputs_are_fine() {
        let v: Vec<u8> = Vec::new();
        let out: Vec<u8> = v.into_par_iter().map(|x| x).collect();
        assert!(out.is_empty());
        let mut e: Vec<u8> = Vec::new();
        e.par_chunks_mut(4)
            .for_each(|_| panic!("no chunks expected"));
    }
}
