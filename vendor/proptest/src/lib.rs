//! Offline in-repo substitute for `proptest`.
//!
//! Implements the strategy combinators and macros this workspace's
//! property tests use: integer/float range strategies, tuples, `prop_map`,
//! `prop::collection::{vec, hash_set}`, `prop::option::of`,
//! `prop::sample::select`, regex-literal string strategies (the
//! `<atom>{lo,hi}` subset), and the `proptest!` / `prop_assert!` /
//! `prop_assert_eq!` macros.
//!
//! Differences from real proptest, by design: generation is seeded
//! deterministically (every run explores the same inputs — reproducible in
//! CI, no persistence files), and failing cases are reported but **not
//! shrunk**. The failure message includes the case's debug-formatted input
//! where the caller provides it via `prop_assert!` format args.

/// Runner configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run each property over `cases` generated inputs.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

pub mod test_runner {
    //! Case generation loop and failure plumbing.

    pub use crate::ProptestConfig;

    /// A failed assertion inside a property body.
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        /// Build a failure from a message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    /// A failed property: which case number and why.
    #[derive(Debug)]
    pub struct TestError {
        /// 0-based index of the failing case.
        pub case: u32,
        /// The assertion message.
        pub message: String,
    }

    impl std::fmt::Display for TestError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(
                f,
                "property failed at case {}: {} (deterministic seed; re-run reproduces)",
                self.case, self.message
            )
        }
    }

    /// Deterministic generator state (SplitMix64).
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub(crate) fn new(seed: u64) -> Self {
            TestRng { state: seed }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, n)` (n > 0), via 128-bit multiply-shift.
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            (((self.next_u64() as u128) * (n as u128)) >> 64) as u64
        }

        /// Uniform f64 in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Drives a property over `config.cases` generated inputs.
    pub struct TestRunner {
        config: ProptestConfig,
        rng: TestRng,
    }

    impl TestRunner {
        /// New runner with a fixed seed (deterministic across runs).
        pub fn new(config: ProptestConfig) -> Self {
            TestRunner {
                config,
                rng: TestRng::new(0x7765_6263_6163_6865), // "webcache"
            }
        }

        /// Generate and check every case; first failure wins.
        pub fn run<S, F>(&mut self, strategy: &S, mut test: F) -> Result<(), TestError>
        where
            S: crate::strategy::Strategy,
            F: FnMut(S::Value) -> Result<(), TestCaseError>,
        {
            for case in 0..self.config.cases {
                let value = strategy.generate(&mut self.rng);
                if let Err(TestCaseError(message)) = test(value) {
                    return Err(TestError { case, message });
                }
            }
            Ok(())
        }
    }
}

pub mod strategy {
    //! The `Strategy` trait and combinators.

    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Produce one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64) - (self.start as u64);
                    self.start + (rng.below(span) as $t)
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as u64) - (lo as u64) + 1;
                    lo + (rng.below(span) as $t)
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    /// String literals act as regex strategies, supporting the subset
    /// `atom{lo,hi}` where atom is `.` (any printable char, no newline)
    /// or a `[...]` class of literals and `a-z` ranges; bare atoms and
    /// literal characters repeat once.
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            generate_from_pattern(self, rng)
        }
    }

    /// Character pool for `.`: printable ASCII plus a sprinkling of
    /// awkward inputs (tab, NUL, multi-byte) to keep parser fuzzing
    /// honest. Newline is excluded, matching regex `.` semantics.
    fn dot_pool() -> Vec<char> {
        let mut pool: Vec<char> = (0x20u8..0x7F).map(char::from).collect();
        pool.extend(['\t', '\u{0}', '\u{7f}', 'é', 'λ', '日', '\u{2028}']);
        pool
    }

    fn class_pool(class: &str) -> Vec<char> {
        let chars: Vec<char> = class.chars().collect();
        let mut pool = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            if i + 2 < chars.len() && chars[i + 1] == '-' {
                let (lo, hi) = (chars[i] as u32, chars[i + 2] as u32);
                assert!(lo <= hi, "bad class range in pattern");
                pool.extend((lo..=hi).filter_map(char::from_u32));
                i += 3;
            } else {
                pool.push(chars[i]);
                i += 1;
            }
        }
        assert!(!pool.is_empty(), "empty character class");
        pool
    }

    fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pattern.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            // Atom.
            let pool: Vec<char> = match chars[i] {
                '.' => {
                    i += 1;
                    dot_pool()
                }
                '[' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == ']')
                        .expect("unterminated [class] in pattern")
                        + i;
                    let class: String = chars[i + 1..close].iter().collect();
                    i = close + 1;
                    class_pool(&class)
                }
                c => {
                    i += 1;
                    vec![c]
                }
            };
            // Optional {lo,hi} repetition (hi inclusive, as in regex).
            let (lo, hi) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .expect("unterminated {lo,hi} in pattern")
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                let (lo, hi) = body.split_once(',').expect("repetition must be {lo,hi}");
                (
                    lo.trim().parse::<usize>().expect("bad repetition bound"),
                    hi.trim().parse::<usize>().expect("bad repetition bound"),
                )
            } else {
                (1, 1)
            };
            let count = lo + rng.below((hi - lo + 1) as u64) as usize;
            for _ in 0..count {
                out.push(pool[rng.below(pool.len() as u64) as usize]);
            }
        }
        out
    }

    macro_rules! tuple_strategy {
        ($($s:ident/$idx:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A / 0);
    tuple_strategy!(A / 0, B / 1);
    tuple_strategy!(A / 0, B / 1, C / 2);
    tuple_strategy!(A / 0, B / 1, C / 2, D / 3);
    tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4);
    tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5);
    tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6);
    tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6, H / 7);
}

pub mod prop {
    //! The `prop::` namespace mirrored from real proptest.

    pub mod collection {
        //! Collection strategies.

        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// `Vec` of `element` values with length drawn from `size`
        /// (half-open, matching `lo..hi` at the call site).
        pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
            assert!(size.start < size.end, "empty vec size range");
            VecStrategy { element, size }
        }

        /// Strategy returned by [`vec`].
        pub struct VecStrategy<S> {
            element: S,
            size: std::ops::Range<usize>,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = (self.size.end - self.size.start) as u64;
                let len = self.size.start + rng.below(span) as usize;
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// `HashSet` of distinct `element` values with size drawn from
        /// `size`. The element domain must be comfortably larger than the
        /// requested size; generation retries duplicates a bounded number
        /// of times and accepts a smaller set if the domain is exhausted.
        pub fn hash_set<S>(element: S, size: std::ops::Range<usize>) -> HashSetStrategy<S>
        where
            S: Strategy,
            S::Value: std::hash::Hash + Eq,
        {
            assert!(size.start < size.end, "empty hash_set size range");
            HashSetStrategy { element, size }
        }

        /// Strategy returned by [`hash_set`].
        pub struct HashSetStrategy<S> {
            element: S,
            size: std::ops::Range<usize>,
        }

        impl<S> Strategy for HashSetStrategy<S>
        where
            S: Strategy,
            S::Value: std::hash::Hash + Eq,
        {
            type Value = std::collections::HashSet<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let span = (self.size.end - self.size.start) as u64;
                let target = self.size.start + rng.below(span) as usize;
                let mut set = std::collections::HashSet::with_capacity(target);
                let mut attempts = 0usize;
                while set.len() < target && attempts < target * 20 + 100 {
                    set.insert(self.element.generate(rng));
                    attempts += 1;
                }
                set
            }
        }
    }

    pub mod option {
        //! `Option` strategies.

        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// `Some(value)` or `None`, evenly weighted.
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy { inner }
        }

        /// Strategy returned by [`of`].
        pub struct OptionStrategy<S> {
            inner: S,
        }

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
                if rng.below(2) == 0 {
                    None
                } else {
                    Some(self.inner.generate(rng))
                }
            }
        }
    }

    pub mod sample {
        //! Sampling from explicit value lists.

        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// Uniform choice from a non-empty `Vec`.
        pub fn select<T: Clone>(options: Vec<T>) -> SelectStrategy<T> {
            assert!(!options.is_empty(), "select over empty list");
            SelectStrategy { options }
        }

        /// Strategy returned by [`select`].
        pub struct SelectStrategy<T> {
            options: Vec<T>,
        }

        impl<T: Clone> Strategy for SelectStrategy<T> {
            type Value = T;
            fn generate(&self, rng: &mut TestRng) -> T {
                self.options[rng.below(self.options.len() as u64) as usize].clone()
            }
        }
    }
}

pub mod prelude {
    //! Glob import mirroring `proptest::prelude::*`.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop, prop_assert, prop_assert_eq, proptest};
}

/// Define property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut runner = $crate::test_runner::TestRunner::new($config);
                let outcome = runner.run(
                    &($($strategy,)+),
                    |($($arg,)+)| {
                        $body
                        Ok(())
                    },
                );
                if let Err(e) = outcome {
                    panic!("{e}");
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strategy),+) $body
            )*
        }
    };
}

/// Assert inside a property body; failure aborts the case with a message
/// instead of panicking (so the runner can report the case number).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Equality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_maps_generate_in_bounds() {
        let mut runner = crate::test_runner::TestRunner::new(ProptestConfig::with_cases(200));
        let strategy = ((1u64..10).prop_map(|x| x * 2),);
        runner
            .run(&strategy, |(x,)| {
                prop_assert!((2..20).contains(&x));
                prop_assert_eq!(x % 2, 0);
                Ok(())
            })
            .unwrap();
    }

    #[test]
    fn regex_subset_shapes_match() {
        let mut rng = crate::test_runner::TestRng::new(7);
        for _ in 0..100 {
            let s = crate::strategy::Strategy::generate(&"[a-c]{2,4}", &mut rng);
            assert!((2..=4).contains(&s.chars().count()));
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
            let t = crate::strategy::Strategy::generate(&".{0,5}", &mut rng);
            assert!(t.chars().count() <= 5);
            assert!(!t.contains('\n'));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself: collections, options, and selects compose.
        #[test]
        fn macro_full_surface(
            v in prop::collection::vec((0u32..5, 0u8..2), 1..20),
            s in prop::collection::hash_set(0u32..1000, 2..10),
            o in prop::option::of(0u64..3),
            pick in prop::sample::select(vec![10u16, 20, 30]),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            prop_assert!(s.len() >= 2 && s.len() < 10);
            if let Some(x) = o {
                prop_assert!(x < 3);
            }
            prop_assert!(pick % 10 == 0);
        }
    }
}
