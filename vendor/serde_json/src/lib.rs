//! Offline in-repo substitute for `serde_json`: compact and pretty
//! serialisation over the substitute `serde::Serialize` (which writes
//! compact JSON directly).

use serde::Serialize;

/// Serialisation error. The substitute `Serialize` is infallible, so this
/// is never produced; it exists to keep `Result`-shaped call sites intact.
#[derive(Debug)]
pub struct Error;

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("json serialisation error")
    }
}

impl std::error::Error for Error {}

/// Serialise to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.serialize_json(&mut out);
    Ok(out)
}

/// Serialise to 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(prettify(&to_string(value)?))
}

/// Re-indent compact JSON. Walks the text once, tracking string literals,
/// so it needs no value model.
fn prettify(compact: &str) -> String {
    let mut out = String::with_capacity(compact.len() * 2);
    let mut depth = 0usize;
    let mut in_string = false;
    let mut escaped = false;
    let mut chars = compact.chars().peekable();
    while let Some(c) = chars.next() {
        if in_string {
            out.push(c);
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_string = false;
            }
            continue;
        }
        match c {
            '"' => {
                in_string = true;
                out.push(c);
            }
            '{' | '[' => {
                out.push(c);
                // Keep empty containers on one line.
                let close = if c == '{' { '}' } else { ']' };
                if chars.peek() == Some(&close) {
                    out.push(close);
                    chars.next();
                } else {
                    depth += 1;
                    newline_indent(&mut out, depth);
                }
            }
            '}' | ']' => {
                depth = depth.saturating_sub(1);
                newline_indent(&mut out, depth);
                out.push(c);
            }
            ',' => {
                out.push(c);
                newline_indent(&mut out, depth);
            }
            ':' => {
                out.push_str(": ");
            }
            c => out.push(c),
        }
    }
    out
}

fn newline_indent(out: &mut String, depth: usize) {
    out.push('\n');
    for _ in 0..depth {
        out.push_str("  ");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_round_structure() {
        let v = vec![("a".to_string(), 1u64), ("b".to_string(), 2u64)];
        let compact = to_string(&v).unwrap();
        assert_eq!(compact, "[[\"a\",1],[\"b\",2]]");
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n"));
        // Stripping whitespace outside strings recovers the compact form.
        let stripped: String = pretty.chars().filter(|c| !c.is_whitespace()).collect();
        assert_eq!(stripped, compact);
    }

    #[test]
    fn empty_containers_stay_inline() {
        let v: Vec<u8> = vec![];
        assert_eq!(to_string_pretty(&v).unwrap(), "[]");
    }
}
