//! # webcache
//!
//! A full reproduction of Williams, Abrams, Standridge, Abdulla & Fox,
//! *Removal Policies in Network Caches for World-Wide Web Documents*
//! (ACM SIGCOMM 1996), as a workspace of production-grade Rust crates.
//! This facade crate re-exports the pieces:
//!
//! * [`trace`] — request records, Common Log Format, the section 1.1
//!   validation pipeline, trace characterisation.
//! * [`workload`] — synthetic generators for the paper's five Virginia
//!   Tech traces (U, G, C, BR, BL), calibrated to every published
//!   statistic.
//! * [`core`] — the paper's contribution: the sorting-key taxonomy of
//!   removal policies, the proxy-cache simulator, two-level and
//!   partitioned caches.
//! * [`stats`] — daily hit-rate series, 7-day moving averages, Zipf fits,
//!   histograms and report tables.
//! * [`proxy`] — a working HTTP/1.0 caching proxy and origin server
//!   driven by the same policies.
//!
//! ## Quickstart
//!
//! ```
//! use webcache::core::policy::named;
//! use webcache::core::sim::simulate_policy;
//! use webcache::workload::{generate, profiles};
//!
//! // A small synthetic Local-Backbone trace …
//! let trace = generate(&profiles::bl().scaled(0.01), 42);
//! // … a cache at 10% of what an infinite cache would need …
//! let capacity = webcache::core::sim::max_needed(&trace) / 10;
//! // … and the paper's headline comparison:
//! let size = simulate_policy(&trace, capacity, Box::new(named::size()));
//! let lru = simulate_policy(&trace, capacity, Box::new(named::lru()));
//! let hr = |r: &webcache::core::sim::SimResult| r.stream("cache").unwrap().total.hit_rate();
//! assert!(hr(&size) > hr(&lru), "SIZE removal maximises hit rate");
//! ```

#![warn(missing_docs)]

pub use webcache_core as core;
pub use webcache_proxy as proxy;
pub use webcache_stats as stats;
pub use webcache_trace as trace;
pub use webcache_workload as workload;
