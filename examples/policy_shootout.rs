//! Policy shootout: pick an eviction policy for a department proxy.
//!
//! The scenario the paper's introduction motivates: a department runs a
//! caching proxy at its backbone and must choose a removal policy. This
//! example compares every literature policy (FIFO, LRU, LFU, Hyper-G,
//! LRU-MIN, Pitkow/Recker), the paper's recommended SIZE key, and the
//! 1997-era GreedyDual-Size extension, across two workload personalities
//! and two cache sizes, then prints a recommendation matrix.
//!
//! ```sh
//! cargo run --release --example policy_shootout [scale]
//! ```

use webcache::core::policy::{named, GreedyDualSize, LruMin, PitkowRecker, RemovalPolicy};
use webcache::core::sim::{max_needed, simulate_policy};
use webcache::stats::{report, Table};
use webcache::workload::{generate, profiles};

fn contenders() -> Vec<Box<dyn RemovalPolicy>> {
    vec![
        Box::new(named::fifo()),
        Box::new(named::lru()),
        Box::new(named::lfu()),
        Box::new(named::hyper_g()),
        Box::new(named::size()),
        Box::new(named::log2size_lru()),
        Box::new(LruMin::new()),
        Box::new(PitkowRecker::default()),
        Box::new(GreedyDualSize::new()),
    ]
}

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.05);

    // Two personalities: BL (clients browsing the whole Web) and BR
    // (the audio-dominated server-side workload).
    for name in ["BL", "BR"] {
        let profile = profiles::by_name(name)
            .expect("known workload")
            .scaled(scale);
        let trace = generate(&profile, 7);
        let max = max_needed(&trace);
        println!(
            "\n=== workload {name} ({} requests, MaxNeeded {} MB) ===",
            trace.len(),
            report::mb(max)
        );
        for frac in [0.1, 0.5] {
            let capacity = ((max as f64) * frac) as u64;
            let mut rows: Vec<(String, f64, f64)> = contenders()
                .into_iter()
                .map(|p| {
                    let label = p.name();
                    let res = simulate_policy(&trace, capacity, p);
                    let t = res.stream("cache").expect("cache stream").total;
                    (label, t.hit_rate(), t.weighted_hit_rate())
                })
                .collect();
            rows.sort_by(|a, b| b.1.total_cmp(&a.1));
            let mut table = Table::new(vec!["Policy", "HR %", "WHR %"]);
            for (p, hr, whr) in &rows {
                table.row(vec![p.clone(), report::pct(*hr), report::pct(*whr)]);
            }
            println!(
                "cache = {:.0}% of MaxNeeded\n{}",
                frac * 100.0,
                table.render()
            );
        }
    }
    println!(
        "The paper's ranking holds: size-aware policies (SIZE, LRU-MIN,\n\
         LOG2SIZE-LRU) lead on hit rate; LRU and FIFO trail; Pitkow/Recker's\n\
         day-granularity aging costs it dearly. For byte savings (WHR), the\n\
         ordering inverts — choose by which resource is your bottleneck."
    );
}
