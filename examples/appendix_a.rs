//! Appendix A: the paper's simulator instrumentation, live.
//!
//! The paper's PERL simulator reported, beyond HR/WHR: "location in
//! sorted list of each URL hit, current cache size, number of accesses
//! and times of access for each URL". This example runs an instrumented
//! LRU cache and an instrumented SIZE cache over the same workload and
//! prints those measures — showing *why* LRU loses: its hits sit deep in
//! the removal order (weak temporal locality, the Fig. 14 story), so the
//! documents LRU is about to evict are rarely the ones that will hit.
//!
//! ```sh
//! cargo run --release --example appendix_a [workload] [scale]
//! ```

use webcache::core::cache::Cache;
use webcache::core::policy::named;
use webcache::core::sim::instrument::InstrumentedCache;
use webcache::core::sim::{max_needed, simulate};
use webcache::workload::{generate, profiles};

fn main() {
    let workload = std::env::args().nth(1).unwrap_or_else(|| "BL".to_string());
    let scale: f64 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.05);
    let profile = profiles::by_name(&workload)
        .expect("workload is one of U, G, C, BR, BL")
        .scaled(scale);
    let trace = generate(&profile, 11);
    let capacity = max_needed(&trace) / 10;
    println!(
        "workload {workload} ({} requests), cache = {} bytes (10% of MaxNeeded)\n",
        trace.len(),
        capacity
    );

    for make in [named::lru, named::size] {
        let policy = make();
        let name = webcache::core::policy::RemovalPolicy::name(&policy);
        let mut ic = InstrumentedCache::new(Cache::new(capacity, Box::new(policy)), 500);
        let res = simulate(&trace, &mut ic, &name);
        let totals = res.stream("cache").expect("stream").total;
        let rep = ic.report();
        println!(
            "policy {name}: HR {:.1}%, WHR {:.1}%",
            totals.hit_rate() * 100.0,
            totals.weighted_hit_rate() * 100.0
        );
        println!(
            "  hits within 15 places of eviction: {:.1}%",
            rep.hits_within_position(15) * 100.0
        );
        let (t_min, s_min) = rep.size_samples.first().copied().unwrap_or((0, 0));
        let (t_max, s_max) = rep.size_samples.last().copied().unwrap_or((0, 0));
        println!(
            "  cache size samples: {} taken, {:.2} MB @t{} → {:.2} MB @t{}",
            rep.size_samples.len(),
            s_min as f64 / 1e6,
            t_min,
            s_max as f64 / 1e6,
            t_max
        );
        println!(
            "  URLs referenced ≥10 times: {} of {}",
            rep.urls_with_at_least(10),
            rep.url_access.len()
        );
        // The single busiest URL's access record.
        if let Some((url, acc)) = rep.url_access.iter().max_by_key(|(_, a)| a.nrefs) {
            println!(
                "  hottest URL {url}: {} refs ({} hits), first t{} last t{}\n",
                acc.nrefs, acc.hits, acc.first_access, acc.last_access
            );
        }
    }
    println!(
        "Reading: under LRU most hits land far from the eviction point —\n\
         the interreference times of Fig. 14 are simply longer than a 10%\n\
         cache's residency under recency ordering. SIZE keeps small, hot\n\
         documents resident regardless of how long ago they were touched."
    );
}
