//! Campus proxy: a real HTTP proxy in front of a real origin server.
//!
//! Recreates the paper's motivating anecdote — a department whose
//! backbone is saturated by a single popular audio site ("88% of the
//! bytes transferred in a 37 day measurement period were audio") — and
//! shows how much origin traffic a caching proxy at the campus edge
//! eliminates. Everything runs over real loopback TCP: a synthetic
//! origin, the `webcache-proxy` caching proxy with the paper's SIZE
//! policy, and a replay client.
//!
//! ```sh
//! cargo run --release --example campus_proxy
//! ```

use std::net::TcpStream;
use std::sync::Arc;
use webcache::proxy::http::{read_response, write_request, Request};
use webcache::proxy::{DocStore, OriginServer, ProxyConfig, ProxyServer};
use webcache::workload::{generate, profiles};

fn main() {
    // A 1%-scale Remote Backbone trace: the audio-dominated workload.
    let profile = profiles::br().scaled(0.01);
    let trace = generate(&profile, 3);
    println!(
        "replaying {} requests from workload {} through a live proxy…",
        trace.len(),
        trace.name
    );

    // Populate the origin with every document the trace references, at
    // its final size (replay ignores mid-trace modifications).
    let store = Arc::new(DocStore::new());
    let mut last_size = std::collections::HashMap::new();
    for r in &trace.requests {
        last_size.insert(r.url, r.size);
    }
    for (&url, &size) in &last_size {
        let text = trace.interner.url_text(url).expect("interned");
        store.put_synthetic(text, size, 1);
    }
    let origin = OriginServer::start(store).expect("origin starts");

    // A campus-sized cache: MaxNeeded for this trace. The paper's
    // anecdote is about a well-provisioned cache at the campus edge —
    // the savings below come from re-references, not from squeezing.
    let capacity = last_size.values().sum::<u64>();
    let proxy = ProxyServer::start(origin.addr(), ProxyConfig::new(capacity), || {
        Box::new(webcache::core::policy::named::size())
    })
    .expect("proxy starts");

    // Replay the trace (single client connection per request, HTTP/1.0
    // style).
    for r in &trace.requests {
        let url = trace.interner.url_text(r.url).expect("interned");
        let mut s = TcpStream::connect(proxy.addr()).expect("connect proxy");
        write_request(&mut s, &Request::get(url)).expect("send");
        let resp = read_response(&mut s).expect("response");
        assert_eq!(resp.status, 200, "proxy failed on {url}");
    }

    let p = proxy.stats();
    let o = origin.stats();
    let delivered = p.bytes_from_cache + p.bytes_from_origin;
    println!(
        "\nproxy:   {} requests, HR {:.1}%, {:.1} MB served from cache",
        p.requests,
        p.hit_rate() * 100.0,
        p.bytes_from_cache as f64 / 1e6
    );
    println!(
        "origin:  {} full responses, {:.1} MB actually sent upstream",
        o.full_responses.load(std::sync::atomic::Ordering::Relaxed),
        p.bytes_from_origin as f64 / 1e6
    );
    println!(
        "savings: {:.1}% of delivered bytes never crossed the backbone (WHR)",
        100.0 * p.bytes_from_cache as f64 / delivered as f64
    );
    println!(
        "(the paper estimates a campus cache \"would eliminate up to 89.2% of\n\
         the bytes sent in HTTP traffic in the department backbone\")"
    );
}
