//! Capacity planning: how big should the proxy's disk be?
//!
//! A downstream question the paper's Experiment 1/2 data answers: sweep
//! the cache size from 1% to 100% of MaxNeeded under the best policy
//! (SIZE) and under LRU, plot the hit-rate curves, and find the knee —
//! the point past which more disk buys little. Also demonstrates the
//! two-level configuration: a small L1 backed by a large L2.
//!
//! ```sh
//! cargo run --release --example capacity_planning [workload] [scale]
//! ```

use webcache::core::cache::multilevel::TwoLevelCache;
use webcache::core::cache::Cache;
use webcache::core::policy::named;
use webcache::core::sim::{max_needed, simulate, simulate_policy};
use webcache::stats::{report, Table};
use webcache::workload::{generate, profiles};

fn main() {
    let workload = std::env::args().nth(1).unwrap_or_else(|| "G".to_string());
    let scale: f64 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.05);
    let profile = profiles::by_name(&workload)
        .expect("workload is one of U, G, C, BR, BL")
        .scaled(scale);
    let trace = generate(&profile, 11);
    let max = max_needed(&trace);
    println!(
        "workload {workload}: {} requests, MaxNeeded {} MB\n",
        trace.len(),
        report::mb(max)
    );

    let mut table = Table::new(vec![
        "Cache (% MaxNeeded)",
        "SIZE HR %",
        "LRU HR %",
        "SIZE WHR %",
        "LRU WHR %",
    ]);
    let mut knee_found = None;
    let mut prev_hr = 0.0;
    for pct in [1, 2, 5, 10, 20, 35, 50, 75, 100] {
        let capacity = (max as f64 * pct as f64 / 100.0) as u64;
        let size = simulate_policy(&trace, capacity, Box::new(named::size()));
        let lru = simulate_policy(&trace, capacity, Box::new(named::lru()));
        let st = size.stream("cache").expect("stream").total;
        let lt = lru.stream("cache").expect("stream").total;
        table.row(vec![
            format!("{pct}"),
            report::pct(st.hit_rate()),
            report::pct(lt.hit_rate()),
            report::pct(st.weighted_hit_rate()),
            report::pct(lt.weighted_hit_rate()),
        ]);
        // Knee: the first size where another doubling gains < 2% HR.
        if knee_found.is_none() && pct > 1 && st.hit_rate() - prev_hr < 0.02 {
            knee_found = Some(pct);
        }
        prev_hr = st.hit_rate();
    }
    println!("{}", table.render());
    match knee_found {
        Some(pct) => println!(
            "knee: ≈{pct}% of MaxNeeded ({} MB) — beyond this, more disk buys <2% HR per step",
            report::mb((max as f64 * pct as f64 / 100.0) as u64)
        ),
        None => println!("hit rate keeps climbing to 100% of MaxNeeded"),
    }

    // Two-level alternative: tiny L1 (2%) + generous L2 (50%).
    let mut hierarchy = TwoLevelCache::new(
        Cache::new(max / 50, Box::new(named::size())),
        Cache::new(max / 2, Box::new(named::lru())),
    );
    let res = simulate(&trace, &mut hierarchy, "L1 2% + L2 50%");
    let l1 = res.stream("l1").expect("l1").total;
    let l2 = res.stream("l2").expect("l2").total;
    println!(
        "\ntwo-level: L1 (2%) HR {} | L2 (50%) adds {} HR / {} WHR over all requests",
        report::pct(l1.hit_rate()),
        report::pct(l2.hit_rate()),
        report::pct(l2.weighted_hit_rate()),
    );
}
