//! Quickstart: simulate the paper's headline result in ~30 lines.
//!
//! Generates a scaled-down Local Backbone (BL) workload, runs the six
//! Table 1 primary keys against a cache sized at 10% of MaxNeeded, and
//! prints the hit-rate ranking — SIZE wins, exactly as in the paper.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use webcache::core::policy::{Key, KeySpec, SortedPolicy};
use webcache::core::sim::{max_needed, simulate_policy};
use webcache::stats::{report, Table};
use webcache::workload::{generate, profiles};

fn main() {
    // 5% of the real BL trace's volume: ~2700 requests over 37 days.
    let profile = profiles::bl().scaled(0.05);
    let trace = generate(&profile, 42);
    println!(
        "workload {}: {} requests, {} days, {:.1} MB transferred",
        trace.name,
        trace.len(),
        trace.duration_days(),
        trace.total_bytes() as f64 / 1e6
    );

    let max = max_needed(&trace);
    let capacity = max / 10;
    println!(
        "MaxNeeded = {:.1} MB; simulating a {:.1} MB cache\n",
        report::mb(max).parse::<f64>().unwrap(),
        report::mb(capacity).parse::<f64>().unwrap()
    );

    let mut rows: Vec<(String, f64, f64)> = Key::TABLE1
        .iter()
        .map(|&key| {
            let policy = Box::new(SortedPolicy::new(KeySpec::primary(key)));
            let result = simulate_policy(&trace, capacity, policy);
            let totals = result.stream("cache").expect("cache stream").total;
            (
                key.label().to_string(),
                totals.hit_rate(),
                totals.weighted_hit_rate(),
            )
        })
        .collect();
    rows.sort_by(|a, b| b.1.total_cmp(&a.1));

    let mut table = Table::new(vec!["Primary key", "HR %", "WHR %"]);
    for (key, hr, whr) in &rows {
        table.row(vec![key.clone(), report::pct(*hr), report::pct(*whr)]);
    }
    println!("{}", table.render());
    println!(
        "best hit-rate key: {} — \"replacing documents based on size maximizes\n\
         hit rate in each of the studied workloads\" (Williams et al., 1996)",
        rows[0].0
    );
}
