//! Cross-crate integration tests asserting the paper's qualitative
//! results — who wins, by roughly what factor, where the crossovers fall —
//! on moderately scaled synthetic workloads.

use webcache::core::policy::{named, Key, KeySpec, SortedPolicy};
use webcache::core::sim::{max_needed, simulate_infinite, simulate_policy};
use webcache::workload::{generate, profiles};
use webcache_experiments::{exp2, exp3, exp4, Ctx};

const SCALE: f64 = 0.04;
const SEED: u64 = 123;

fn hr(res: &webcache::core::sim::SimResult) -> f64 {
    res.stream("cache").unwrap().total.hit_rate()
}

fn whr(res: &webcache::core::sim::SimResult) -> f64 {
    res.stream("cache").unwrap().total.weighted_hit_rate()
}

/// "Consistently, in our simulations of all five workloads, primary keys
/// SIZE and ⌊log₂(SIZE)⌋ achieve a higher hit rate than any other policy."
#[test]
fn size_keys_win_hit_rate_on_every_workload() {
    for profile in profiles::all() {
        let trace = generate(&profile.scaled(SCALE), SEED);
        let cap = (max_needed(&trace) / 10).max(1);
        let run = |key| {
            hr(&simulate_policy(
                &trace,
                cap,
                Box::new(SortedPolicy::new(KeySpec::primary(key))),
            ))
        };
        let size = run(Key::Size);
        let log2 = run(Key::Log2Size);
        let best_size = size.max(log2);
        for other in [Key::EntryTime, Key::AccessTime, Key::DayOfAccess, Key::NRef] {
            let o = run(other);
            assert!(
                best_size >= o - 0.005,
                "{}: {:?} HR {o} beats SIZE {best_size}",
                profile.name,
                other
            );
        }
        // And SIZE ≈ LOG2(SIZE), as the paper observes.
        assert!(
            (size - log2).abs() < 0.05,
            "{}: SIZE {size} vs LOG2 {log2}",
            profile.name
        );
    }
}

/// The paper's suggested ranking: "SIZE first, then NREF, then ATIME",
/// with ETIME worst among the non-day keys.
#[test]
fn paper_ranking_holds_on_bl() {
    let trace = generate(&profiles::bl().scaled(SCALE), SEED);
    let cap = (max_needed(&trace) / 10).max(1);
    let run = |key| {
        hr(&simulate_policy(
            &trace,
            cap,
            Box::new(SortedPolicy::new(KeySpec::primary(key))),
        ))
    };
    let size = run(Key::Size);
    let nref = run(Key::NRef);
    let atime = run(Key::AccessTime);
    let etime = run(Key::EntryTime);
    assert!(size > nref, "SIZE {size} vs NREF {nref}");
    assert!(nref > atime - 0.01, "NREF {nref} vs ATIME {atime}");
    assert!(atime > etime - 0.01, "ATIME {atime} vs ETIME {etime}");
    // The gap between SIZE and LRU is substantial, not marginal.
    assert!(size - atime > 0.04, "SIZE {size} barely beats LRU {atime}");
}

/// Section 4.4: on WHR the ranking flips — SIZE is the worst performer.
#[test]
fn size_loses_weighted_hit_rate() {
    let trace = generate(&profiles::bl().scaled(SCALE), SEED);
    let cap = (max_needed(&trace) / 10).max(1);
    let run = |key| {
        whr(&simulate_policy(
            &trace,
            cap,
            Box::new(SortedPolicy::new(KeySpec::primary(key))),
        ))
    };
    let size = run(Key::Size);
    let lru = run(Key::AccessTime);
    let nref = run(Key::NRef);
    // LRU's WHR margin over SIZE is large and robust at any scale; NREF's
    // is clear at full scale but can tie at reduced scale, so assert it
    // weakly.
    assert!(
        lru > size,
        "LRU WHR {lru} should beat SIZE WHR {size} (section 4.4)"
    );
    assert!(
        nref > size - 0.01,
        "NREF WHR {nref} far below SIZE WHR {size}"
    );
}

/// LRU-MIN behaves like the size keys (it is "one of the best policies").
#[test]
fn lru_min_is_competitive_with_size() {
    let trace = generate(&profiles::g().scaled(SCALE), SEED);
    let cap = (max_needed(&trace) / 10).max(1);
    let size = hr(&simulate_policy(&trace, cap, Box::new(named::size())));
    let lru_min = hr(&simulate_policy(
        &trace,
        cap,
        Box::new(webcache::core::policy::LruMin::new()),
    ));
    let lru = hr(&simulate_policy(&trace, cap, Box::new(named::lru())));
    assert!(
        lru_min > lru,
        "LRU-MIN {lru_min} should clearly beat plain LRU {lru}"
    );
    assert!(
        size - lru_min < 0.08,
        "LRU-MIN {lru_min} should be near SIZE {size}"
    );
}

/// "Replacing days-old files dramatically reduced HR and WHR in our
/// study" — Pitkow/Recker trails the size keys.
#[test]
fn pitkow_recker_trails_size() {
    let trace = generate(&profiles::bl().scaled(SCALE), SEED);
    let cap = (max_needed(&trace) / 10).max(1);
    let size = hr(&simulate_policy(&trace, cap, Box::new(named::size())));
    let pr = hr(&simulate_policy(
        &trace,
        cap,
        Box::new(webcache::core::policy::PitkowRecker::default()),
    ));
    assert!(size > pr, "SIZE {size} vs Pitkow/Recker {pr}");
}

/// Experiment 1 sanity: finite caches never beat the infinite cache, and
/// the infinite cache's hit count equals the trace's re-reference count
/// minus modification invalidations.
#[test]
fn infinite_cache_is_an_upper_bound() {
    let trace = generate(&profiles::c().scaled(SCALE), SEED);
    let inf = simulate_infinite(&trace);
    let inf_hits = inf.stream("cache").unwrap().total.hits;
    let cap = max_needed(&trace) / 10;
    for policy in [named::size(), named::lru(), named::fifo()] {
        let fin = simulate_policy(&trace, cap, Box::new(policy));
        assert!(fin.stream("cache").unwrap().total.hits <= inf_hits);
    }
    // Hit definition: re-reference with unchanged size.
    let rerefs = webcache_trace::stats::rereference_count(&trace);
    assert!(inf_hits <= rerefs);
    let changes = trace.validation.size_changes;
    assert!(
        inf_hits + changes >= rerefs,
        "hits {inf_hits} + size changes {changes} < re-references {rerefs}"
    );
}

/// The full 36-policy sweep runs and a size-primary combination tops it.
#[test]
fn all36_sweep_crowns_a_size_primary() {
    let ctx = Ctx::with_scale(SCALE, SEED);
    let e = exp2::run_one(&ctx, "BL", 0.1, exp2::PolicySet::All36);
    assert_eq!(e.runs.len(), 36);
    // The winner must be size-driven: either a size primary, or NREF with
    // a size secondary (LFU ties on NREF=1 for most documents, so its
    // size tie-break decides — a combination the paper's sweep contained
    // but did not single out; on our synthetic traces it edges pure SIZE
    // by a couple of points; see EXPERIMENTS.md).
    let best = e.ranked_by_hr()[0];
    let size_driven = |name: &str| {
        name.starts_with("SIZE/")
            || name.starts_with("LOG2(SIZE)/")
            || name.ends_with("/SIZE")
            || name.ends_with("/LOG2(SIZE)")
    };
    assert!(
        size_driven(&best.policy),
        "winner {} is not size-driven",
        best.policy
    );
    // And the best pure size primary is close behind the overall top.
    let best_size = e
        .runs
        .iter()
        .filter(|r| r.policy.starts_with("SIZE/") || r.policy.starts_with("LOG2(SIZE)/"))
        .map(|r| r.total_hr)
        .fold(0.0, f64::max);
    assert!(
        best_size >= best.total_hr - 0.04,
        "best size-primary HR {best_size} far behind {} at {}",
        best.policy,
        best.total_hr
    );
    // Every DAY(ATIME) and ETIME primary ranks below every SIZE primary.
    let worst_size = e
        .runs
        .iter()
        .filter(|r| r.policy.starts_with("SIZE/"))
        .map(|r| r.total_hr)
        .fold(f64::INFINITY, f64::min);
    let best_etime = e
        .runs
        .iter()
        .filter(|r| r.policy.starts_with("ETIME/"))
        .map(|r| r.total_hr)
        .fold(0.0, f64::max);
    assert!(worst_size > best_etime);
}

/// Experiment 3: the infinite L2 behind a starved L1 catches large
/// documents — L2 WHR exceeds L2 HR on every workload.
#[test]
fn second_level_cache_shape() {
    let ctx = Ctx::with_scale(SCALE, SEED);
    for w in ["U", "G", "C", "BR", "BL"] {
        let r = exp3::run_one(&ctx, w, 0.1);
        assert!(
            r.l2_whr >= r.l2_hr,
            "{w}: L2 WHR {} < L2 HR {}",
            r.l2_whr,
            r.l2_hr
        );
        // L1 + L2 together bound the infinite cache's hit rate.
        let trace = ctx.trace(w);
        let inf = simulate_infinite(&trace);
        let inf_hr = inf.stream("cache").unwrap().total.hit_rate();
        assert!(r.l1_hr + r.l2_hr <= inf_hr + 0.01);
    }
}

/// Experiment 4: the partition trade-off direction and the paper's
/// "equal split maximises overall WHR" tendency.
#[test]
fn partitioned_cache_shape() {
    let ctx = Ctx::with_scale(0.08, SEED);
    let e = exp4::run(&ctx, "BR", 0.1);
    assert_eq!(e.runs.len(), 3);
    // Audio WHR grows with the audio share.
    assert!(e.runs[0].audio_whr <= e.runs[2].audio_whr + 0.01);
    // Non-audio WHR shrinks as its space shrinks.
    assert!(e.runs[0].non_audio_whr >= e.runs[2].non_audio_whr - 0.01);
}

/// MaxNeeded ordering across workloads matches the paper:
/// U ≫ G ≈ BL > C ≈ BR.
#[test]
fn max_needed_ordering_matches_paper() {
    // 0.08 rather than the file-wide SCALE: at 0.04 the G/BR and BL/BR
    // gaps are within generation noise and their order depends on the
    // generator stream.
    let ctx = Ctx::with_scale(0.08, SEED);
    let mn: std::collections::HashMap<&str, u64> = ["U", "G", "C", "BR", "BL"]
        .into_iter()
        .map(|w| (w, max_needed(&ctx.trace(w))))
        .collect();
    // Only the scale-robust orderings: U is by far the biggest and BR by
    // far the smallest. (G vs C flips at reduced scale because C's
    // classroom working sets do not shrink with the request budget; the
    // full-scale ordering in EXPERIMENTS.md matches the paper on all
    // five.)
    assert!(mn["U"] > mn["G"]);
    assert!(mn["U"] > mn["BL"]);
    assert!(mn["G"] > mn["BR"]);
    assert!(mn["BL"] > mn["BR"]);
}
