//! End-to-end equivalence: the real HTTP proxy and the trace-driven
//! simulator must agree hit-for-hit when driven by the same request
//! sequence (static documents, no TTL revalidation).

use std::net::TcpStream;
use std::sync::Arc;
use webcache::core::cache::Cache;
use webcache::core::policy::named;
use webcache::proxy::http::{read_response, write_request, Request};
use webcache::proxy::{DocStore, OriginServer, ProxyConfig, ProxyServer};
use webcache::workload::{generate, profiles};
use webcache_trace::{ClientId, ServerId, Trace};

/// Build an origin holding every URL of the trace at a fixed size, and a
/// request sequence free of mid-trace modifications.
fn static_sequence(trace: &Trace) -> (Arc<DocStore>, Vec<(String, u64)>) {
    let store = Arc::new(DocStore::new());
    let mut first_size = std::collections::HashMap::new();
    let mut seq = Vec::with_capacity(trace.len());
    for r in &trace.requests {
        let size = *first_size.entry(r.url).or_insert(r.size);
        let url = trace
            .interner
            .url_text(r.url)
            .expect("interned")
            .to_string();
        seq.push((url, size));
    }
    for (&url, &size) in &first_size {
        let text = trace.interner.url_text(url).expect("interned");
        store.put_synthetic(text, size, 1);
    }
    (store, seq)
}

#[test]
fn proxy_hits_match_simulator_hits() {
    let profile = profiles::c().scaled(0.01);
    let trace = generate(&profile, 99);
    let (store, seq) = static_sequence(&trace);
    assert!(seq.len() > 200, "sequence too small to be meaningful");

    // Simulator, with the proxy's logical clock: one tick per request.
    let capacity: u64 = 2_000_000;
    let mut sim_cache = Cache::new(capacity, Box::new(named::size()));
    let mut interner = webcache_trace::Interner::new();
    let mut sim_hits = 0u64;
    for (i, (url, size)) in seq.iter().enumerate() {
        let r = webcache_trace::Request {
            time: (i + 1) as u64,
            client: ClientId(0),
            server: ServerId(0),
            url: interner.url(url),
            size: *size,
            doc_type: webcache_trace::DocType::classify(url),
            last_modified: None,
        };
        if sim_cache.request(&r).is_hit() {
            sim_hits += 1;
        }
    }

    // Real proxy over loopback TCP, same policy and capacity.
    let origin = OriginServer::start(store).expect("origin");
    let proxy = ProxyServer::start(origin.addr(), ProxyConfig::new(capacity), || {
        Box::new(named::size())
    })
    .expect("proxy");
    let mut proxy_hits = 0u64;
    for (url, size) in &seq {
        let mut s = TcpStream::connect(proxy.addr()).expect("connect");
        write_request(&mut s, &Request::get(url)).expect("send");
        let resp = read_response(&mut s).expect("recv");
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body.len() as u64, *size, "wrong body for {url}");
        if resp.is_cache_hit() {
            proxy_hits += 1;
        }
    }

    assert_eq!(
        proxy_hits,
        sim_hits,
        "proxy and simulator disagree on {} requests",
        seq.len()
    );
    assert_eq!(proxy.stats().hits, sim_hits);
    assert!(sim_hits > 0, "degenerate sequence: no hits at all");
}

#[test]
fn proxy_log_validates_through_the_trace_pipeline() {
    let profile = profiles::g().scaled(0.005);
    let trace = generate(&profile, 5);
    let (store, seq) = static_sequence(&trace);
    let origin = OriginServer::start(store).expect("origin");
    let proxy = ProxyServer::start(origin.addr(), ProxyConfig::new(10_000_000), || {
        Box::new(named::lru())
    })
    .expect("proxy");
    for (url, _) in &seq {
        let mut s = TcpStream::connect(proxy.addr()).expect("connect");
        write_request(&mut s, &Request::get(url)).expect("send");
        read_response(&mut s).expect("recv");
    }
    let log = proxy.access_log();
    assert_eq!(log.lines().count(), seq.len());
    // Every line records a 200 with the document's actual size.
    for line in log.lines() {
        assert!(line.contains("\"GET http://"), "line {line:?}");
        assert!(line.contains(" 200 "), "line {line:?}");
    }
}
