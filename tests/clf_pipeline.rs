//! The full log pipeline: generated workload → Common Log Format text →
//! re-parsed and re-validated trace → identical simulation results.
//! This is how the paper's own tooling worked (tcpdump → CLF → PERL
//! simulator), so the round trip must be lossless for everything the
//! simulator consumes.

use webcache::core::policy::named;
use webcache::core::sim::simulate_policy;
use webcache::workload::{generate, profiles};
use webcache_trace::Trace;

const EPOCH: i64 = 811_296_000; // 1995-09-17 00:00:00 UTC

#[test]
fn clf_round_trip_preserves_simulation_results() {
    let profile = profiles::bl().scaled(0.02);
    let original = generate(&profile, 31);
    let text = original.to_clf(EPOCH);
    let (reparsed, bad_lines) = Trace::from_clf("BL-reparsed", &text, EPOCH);
    assert_eq!(bad_lines, 0, "serialiser produced unparseable lines");
    assert_eq!(reparsed.len(), original.len());
    assert_eq!(reparsed.total_bytes(), original.total_bytes());

    let capacity = webcache::core::sim::max_needed(&original) / 10;
    for make in [named::size, named::lru, named::lfu] {
        let a = simulate_policy(&original, capacity, Box::new(make()));
        let b = simulate_policy(&reparsed, capacity, Box::new(make()));
        // URL ids may be assigned in a different order, but the random
        // tie-break is the only id-dependent behaviour and these policies
        // tie rarely; totals must agree exactly for hits and bytes.
        let (ta, tb) = (
            a.stream("cache").unwrap().total,
            b.stream("cache").unwrap().total,
        );
        assert_eq!(ta.requests, tb.requests, "{}", a.system);
        assert_eq!(ta.bytes_requested, tb.bytes_requested, "{}", a.system);
        let drift = (ta.hits as i64 - tb.hits as i64).unsigned_abs();
        assert!(
            drift * 1000 <= ta.requests,
            "{}: hits drifted {drift} of {}",
            a.system,
            ta.requests
        );
    }
}

#[test]
fn validation_statistics_survive_the_round_trip() {
    let profile = profiles::br().scaled(0.02);
    let original = generate(&profile, 41);
    let text = original.to_clf(EPOCH);
    let (reparsed, _) = Trace::from_clf("BR2", &text, EPOCH);
    // `to_clf` writes validated requests (all status 200, real sizes), so
    // revalidation accepts everything and observes the same size-change
    // rate.
    assert_eq!(reparsed.validation.dropped_not_ok, 0);
    assert_eq!(reparsed.validation.dropped_zero_unseen, 0);
    let a = original.validation.size_change_fraction();
    let b = reparsed.validation.size_change_fraction();
    assert!((a - b).abs() < 1e-9, "size-change fraction {a} vs {b}");
    // Last-modified fields survive (BR's logs carry them).
    let lm_original = original
        .requests
        .iter()
        .filter(|r| r.last_modified.is_some())
        .count();
    let lm_reparsed = reparsed
        .requests
        .iter()
        .filter(|r| r.last_modified.is_some())
        .count();
    assert_eq!(lm_original, lm_reparsed);
    assert!(lm_original > 0);
}

#[test]
fn day_structure_survives_the_round_trip() {
    let profile = profiles::c().scaled(0.02);
    let original = generate(&profile, 51);
    let text = original.to_clf(EPOCH);
    let (reparsed, _) = Trace::from_clf("C2", &text, EPOCH);
    assert_eq!(original.duration_days(), reparsed.duration_days());
    let days_a: Vec<usize> = original.days().map(|(_, r)| r.len()).collect();
    let days_b: Vec<usize> = reparsed.days().map(|(_, r)| r.len()).collect();
    assert_eq!(days_a, days_b, "per-day request counts changed");
    // C's idle (non-class) days survive as empty days.
    assert!(days_a.iter().filter(|&&n| n == 0).count() > 20);
}
