//! Cross-crate SplitMix64 equivalence: the three historical copies of
//! the mixer (workload RNG stream seeding, `ShardedCache` shard keying,
//! `FaultPlan` per-connection decisions) now all resolve to
//! `webcache_core::util`. These tests pin (a) the published SplitMix64
//! vectors, (b) each call site's exact pre-dedup formula, and (c) the
//! downstream artifacts those call sites produce — so a future edit to
//! any one consumer cannot silently decorrelate the others.

use webcache_core::cache::ShardedCache;
use webcache_core::policy::named;
use webcache_core::util::{splitmix64, splitmix64_finalise, stream_seed, SPLITMIX64_GAMMA};
use webcache_proxy::{FaultKind, FaultPlan};
use webcache_trace::UrlId;

/// The exact byte-level reference implementation all call sites used
/// before deduplication.
fn reference_splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[test]
fn util_matches_the_reference_implementation() {
    for x in (0u64..4096)
        .chain([u64::MAX, u64::MAX - 1, 1 << 63, 0xDEAD_BEEF_CAFE_F00D])
        .chain((0..64).map(|s| 1u64 << s))
    {
        assert_eq!(splitmix64(x), reference_splitmix64(x), "diverged at {x:#x}");
    }
    // Published vectors (seed 0, outputs 1 and 2).
    assert_eq!(splitmix64(0), 0xE220_A839_7B1D_CDAF);
    assert_eq!(splitmix64(SPLITMIX64_GAMMA), 0x6E78_9E6A_A1B9_65F4);
}

/// The workload generator's per-day stream seeds: `stream_seed` with the
/// generator's constants must reproduce the original inline mixer.
#[test]
fn workload_day_stream_seed_formula_is_preserved() {
    let original = |seed: u64, day: u64| -> u64 {
        let z = seed
            .wrapping_add(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(day.wrapping_mul(0xBF58_476D_1CE4_E5B9));
        splitmix64_finalise(z)
    };
    for seed in [0u64, 1, 2, 1996, u64::MAX] {
        for day in 0..32 {
            assert_eq!(
                stream_seed(seed, day, SPLITMIX64_GAMMA, 0xBF58_476D_1CE4_E5B9),
                original(seed, day),
                "day stream seed diverged at ({seed}, {day})"
            );
        }
    }
}

/// The universe builder's per-chunk stream seeds, same check with its
/// distinct constant family.
#[test]
fn workload_chunk_stream_seed_formula_is_preserved() {
    let original = |seed: u64, rank: u64| -> u64 {
        let z = seed
            .wrapping_add(0x1656_67B1_9E37_79F9)
            .wrapping_add(rank.wrapping_mul(0x94D0_49BB_1331_11EB));
        splitmix64_finalise(z)
    };
    for seed in [1u64, 7, 1996] {
        for rank in (0..5).map(|i| i * 8192) {
            assert_eq!(
                stream_seed(seed, rank, 0x1656_67B1_9E37_79F9, 0x94D0_49BB_1331_11EB),
                original(seed, rank),
                "chunk stream seed diverged at ({seed}, {rank})"
            );
        }
    }
}

/// Workload generation itself is unchanged by the dedup: a frozen
/// checksum of one generated trace's request stream.
#[test]
fn generated_workload_stream_is_bit_identical() {
    let profile = webcache_workload::profiles::c().scaled(0.002);
    let trace = webcache_workload::generator::generate(&profile, 1996);
    assert!(!trace.requests.is_empty());
    // FNV-1a over the fields that the RNG streams determine.
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    let mut fold = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1_0000_0193);
        }
    };
    for r in &trace.requests {
        fold(r.time);
        fold(r.url.0 as u64);
        fold(r.size);
    }
    // Frozen before the dedup landed; a change here means generation
    // semantics moved, which this PR must not do.
    assert_eq!(h, TRACE_C_SEED1996_SCALE0002_FNV, "workload stream changed");
}

/// Golden value for `generated_workload_stream_is_bit_identical`,
/// captured from the pre-dedup generator (the `*_formula_is_preserved`
/// tests above prove the dedup changed no seed, so the stream is the
/// same before and after).
const TRACE_C_SEED1996_SCALE0002_FNV: u64 = 0x908A_DAF8_DB7D_A7FC;

#[test]
fn shard_keying_is_splitmix64_masked() {
    let cache: ShardedCache = ShardedCache::new(1 << 20, 8, || Box::new(named::lru()));
    for id in 0..10_000u32 {
        assert_eq!(
            cache.shard_index(UrlId(id)),
            (splitmix64(id as u64) & 7) as usize,
            "shard key diverged at id {id}"
        );
    }
}

/// FaultPlan decisions are pure `splitmix64(seed ^ conn * C)` draws; the
/// dedup must not move a single connection's fate.
#[test]
fn fault_plan_decisions_match_the_direct_formula() {
    let plan = FaultPlan::new(42)
        .refuse_connect(0.05)
        .server_error(0.05)
        .truncate(0.05);
    let rates = [0.05, 0.0, 0.0, 0.05, 0.05]; // ALL order: refuse, delay, stall, truncate, 5xx
    for conn in 0..10_000u64 {
        let draw = (splitmix64(42u64 ^ conn.wrapping_mul(0xA076_1D64_78BD_642F)) >> 11) as f64
            / (1u64 << 53) as f64;
        let mut expected = None;
        let mut cumulative = 0.0;
        for (i, &p) in rates.iter().enumerate() {
            cumulative += p;
            if draw < cumulative {
                expected = Some(FaultKind::ALL[i]);
                break;
            }
        }
        assert_eq!(
            plan.decide(conn),
            expected,
            "fault decision diverged at {conn}"
        );
    }
}
