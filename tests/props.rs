//! Property-based tests (proptest) over the core invariants: cache
//! accounting, eviction necessity, policy/store consistency, hierarchy
//! inclusion, partition accounting, CLF round-trips and series bounds.

use proptest::prelude::*;
use webcache::core::cache::multilevel::TwoLevelCache;
use webcache::core::cache::partitioned::PartitionedCache;
use webcache::core::cache::{Cache, Outcome};
use webcache::core::policy::{named, Key, KeySpec, RemovalPolicy, SortedPolicy};
use webcache::stats::series::DailySeries;
use webcache_trace::{clf, ClientId, DocType, RawRequest, Request, ServerId, UrlId};

/// An arbitrary request stream: times strictly increase; URLs come from a
/// small pool so hits, re-sizes and evictions all happen.
fn request_stream(max_len: usize) -> impl Strategy<Value = Vec<Request>> {
    prop::collection::vec((0u32..24, 1u64..4_000, 0u8..6), 1..max_len).prop_map(|items| {
        items
            .into_iter()
            .enumerate()
            .map(|(i, (url, size, t))| Request {
                time: (i as u64) * 600,
                client: ClientId(url % 3),
                server: ServerId(url % 5),
                url: UrlId(url),
                size,
                doc_type: DocType::ALL[(t as usize) % 6],
                last_modified: None,
            })
            .collect()
    })
}

/// One of every policy family, chosen by index.
fn policy_by_index(i: u8) -> Box<dyn RemovalPolicy> {
    match i % 8 {
        0 => Box::new(named::fifo()),
        1 => Box::new(named::lru()),
        2 => Box::new(named::lfu()),
        3 => Box::new(named::hyper_g()),
        4 => Box::new(named::size()),
        5 => Box::new(webcache::core::policy::LruMin::new()),
        6 => Box::new(webcache::core::policy::PitkowRecker::default()),
        _ => Box::new(webcache::core::policy::GreedyDualSize::new()),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Core accounting: used bytes equal resident sizes, capacity is
    /// never exceeded, the policy tracks exactly the resident set, and
    /// outcome counts tally.
    #[test]
    fn cache_invariants_hold_for_any_stream(
        reqs in request_stream(300),
        policy_idx in 0u8..8,
        capacity in 2_000u64..40_000,
    ) {
        let mut cache = Cache::new(capacity, policy_by_index(policy_idx));
        let mut hits = 0u64;
        let mut misses = 0u64;
        for r in &reqs {
            match cache.request(r) {
                Outcome::Hit => hits += 1,
                Outcome::Miss { .. } | Outcome::MissModified { .. } | Outcome::MissTooBig => {
                    misses += 1
                }
            }
            cache.check_invariants();
        }
        let c = cache.counts();
        prop_assert_eq!(c.requests, reqs.len() as u64);
        prop_assert_eq!(c.hits, hits);
        prop_assert_eq!(c.hits + misses, c.requests);
        prop_assert!(c.bytes_hit <= c.bytes_requested);
        prop_assert!(cache.stats().max_used <= capacity);
    }

    /// Evictions happen only when necessary: a miss that evicted
    /// documents implies the document could not have fit beforehand.
    #[test]
    fn evictions_only_when_needed(
        reqs in request_stream(200),
        capacity in 2_000u64..20_000,
    ) {
        let mut cache = Cache::new(capacity, Box::new(named::lru()));
        for r in &reqs {
            let used_before = cache.used();
            let had = cache.contains(r.url);
            match cache.request(r) {
                Outcome::Miss { evicted } if !evicted.is_empty() => {
                    prop_assert!(
                        used_before + r.size > capacity,
                        "evicted with {} free",
                        capacity - used_before
                    );
                    prop_assert!(!had);
                }
                Outcome::MissTooBig => prop_assert!(r.size > capacity),
                _ => {}
            }
        }
    }

    /// A hit never changes the byte accounting; a miss adds exactly the
    /// document (minus evictions).
    #[test]
    fn used_bytes_evolve_exactly(
        reqs in request_stream(200),
        capacity in 5_000u64..50_000,
    ) {
        let mut cache = Cache::new(capacity, Box::new(named::size()));
        for r in &reqs {
            let before = cache.used();
            match cache.request(r) {
                Outcome::Hit => prop_assert_eq!(cache.used(), before),
                Outcome::Miss { evicted } => {
                    let freed: u64 = evicted.iter().map(|m| m.size).sum();
                    prop_assert_eq!(cache.used(), before - freed + r.size);
                }
                Outcome::MissModified { evicted } => {
                    let freed: u64 = evicted.iter().map(|m| m.size).sum();
                    // The stale copy's size also left the cache.
                    prop_assert!(cache.used() <= before + r.size);
                    prop_assert!(cache.used() + freed >= r.size);
                }
                Outcome::MissTooBig => prop_assert!(cache.used() <= before),
            }
        }
    }

    /// All 36 taxonomy combinations preserve the sorted-structure
    /// invariant: victim() always returns the head of the sorted list.
    #[test]
    fn sorted_policy_victim_is_sorted_head(
        reqs in request_stream(150),
        combo in 0usize..36,
    ) {
        let spec = KeySpec::all36(7)[combo];
        let mut cache = Cache::new(u64::MAX, Box::new(SortedPolicy::new(spec)));
        let mut shadow = SortedPolicy::new(spec);
        for r in &reqs {
            let had_same = cache.meta(r.url).map(|m| m.size) == Some(r.size);
            cache.request(r);
            let meta = *cache.meta(r.url).unwrap();
            if had_same {
                shadow.on_access(&meta);
            } else {
                shadow.on_remove(r.url);
                shadow.on_insert(&meta);
            }
        }
        let t = reqs.last().map(|r| r.time + 1).unwrap_or(0);
        prop_assert_eq!(shadow.victim(t, 0), {
            let order = shadow.sorted_urls();
            order.first().copied()
        });
    }

    /// Two-level inclusion: with an infinite L2, every L1-resident
    /// document is also L2-resident, and level hit counts are exclusive.
    #[test]
    fn two_level_inclusion_and_accounting(
        reqs in request_stream(200),
        l1_cap in 2_000u64..15_000,
    ) {
        let mut h = TwoLevelCache::new(
            Cache::new(l1_cap, Box::new(named::size())),
            Cache::infinite(Box::new(named::lru())),
        );
        for r in &reqs {
            h.request(r);
        }
        for m in h.l1().iter() {
            prop_assert!(h.l2().contains(m.url));
        }
        let l1 = h.l1().counts();
        let l2 = h.l2_counts_over_all_requests();
        prop_assert_eq!(l1.requests, l2.requests);
        prop_assert!(l1.hits + l2.hits <= l1.requests);
    }

    /// Partitioned caches: class counters sum to the totals, and no
    /// partition exceeds its capacity.
    #[test]
    fn partitioned_accounting(
        reqs in request_stream(200),
        audio_frac in 0.1f64..0.9,
    ) {
        let mut p = PartitionedCache::audio_split(20_000, audio_frac, || {
            Box::new(named::size())
        });
        for r in &reqs {
            p.request(r);
        }
        let total = p.total_counts();
        let sum_req: u64 = p.partitions().iter().map(|x| x.class_counts.requests).sum();
        let sum_hits: u64 = p.partitions().iter().map(|x| x.class_counts.hits).sum();
        prop_assert_eq!(total.requests, sum_req);
        prop_assert_eq!(total.hits, sum_hits);
        for part in p.partitions() {
            prop_assert!(part.cache.used() <= part.cache.capacity());
            part.cache.check_invariants();
        }
    }

    /// LRU-MIN's defining guarantee: if any cached document is at least
    /// as large as the incoming one, the victim is at least that large.
    #[test]
    fn lru_min_victim_size_bound(
        reqs in request_stream(150),
        incoming in 1u64..4_000,
    ) {
        let mut cache = Cache::new(u64::MAX, Box::new(named::lru()));
        let mut lm = webcache::core::policy::LruMin::new();
        for r in &reqs {
            cache.request(r);
        }
        for m in cache.iter() {
            lm.on_insert(m);
        }
        let any_big = cache.iter().any(|m| m.size >= incoming);
        if let Some(victim) = lm.victim(u64::MAX, incoming) {
            let vsize = cache.meta(victim).unwrap().size;
            if any_big {
                prop_assert!(vsize >= incoming, "victim {vsize} < incoming {incoming}");
            }
        } else {
            prop_assert!(cache.is_empty());
        }
    }

    /// CLF round trip for arbitrary well-formed raw requests.
    #[test]
    fn clf_round_trips_arbitrary_requests(
        time in 0u64..100_000_000,
        path in "[a-z0-9/._-]{1,40}",
        host in "[a-z0-9.-]{1,20}",
        client in "[a-z0-9.-]{1,20}",
        status in prop::sample::select(vec![200u16, 304, 404, 500]),
        size in 0u64..1_000_000_000,
        lm in prop::option::of(0u64..100_000_000),
    ) {
        let req = RawRequest {
            time,
            client,
            url: format!("http://{host}/{path}"),
            status,
            size,
            last_modified: lm,
        };
        let epoch = 800_000_000;
        let line = clf::format_line(&req, epoch);
        let back = clf::parse_line(&line, epoch).expect("round trip");
        prop_assert_eq!(back, req);
    }

    /// Moving averages stay within the input's recorded range.
    #[test]
    fn moving_average_is_bounded(
        values in prop::collection::vec(prop::option::of(0.0f64..100.0), 1..60),
        window in 1usize..10,
    ) {
        let s = DailySeries::new(values);
        if let Some((lo, hi)) = s.range() {
            for v in s.moving_average(window).values.iter().flatten() {
                prop_assert!(*v >= lo - 1e-9 && *v <= hi + 1e-9);
            }
            for v in s.moving_average_recorded(window).values.iter().flatten() {
                prop_assert!(*v >= lo - 1e-9 && *v <= hi + 1e-9);
            }
        }
    }

    /// The deterministic random key is a total order: no two distinct
    /// documents ever compare equal under a full KeySpec rank + id.
    #[test]
    fn random_key_total_order(urls in prop::collection::hash_set(0u32..10_000, 2..50)) {
        let spec = KeySpec::primary(Key::Random);
        let metas: Vec<_> = urls
            .iter()
            .map(|&u| webcache::core::DocMeta {
                url: UrlId(u),
                size: 100,
                doc_type: DocType::Text,
                entry_time: 0,
                last_access: 0,
                nrefs: 1,
                expires: None,
                refetch_latency_ms: 0,
                type_priority: 0,
                last_modified: None,
            })
            .collect();
        let mut keys: Vec<_> = metas.iter().map(|m| (spec.rank(m), m.url)).collect();
        keys.sort();
        keys.dedup();
        prop_assert_eq!(keys.len(), metas.len());
    }
}
